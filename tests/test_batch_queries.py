"""Tests for the batched query pipeline (BatchQuerySession / connected_many).

The randomized cross-check asserts that the batched path agrees pairwise with
both single-query engines and with BFS ground truth across graph families and
fault budgets — the batched session must be a pure refactoring of the query
semantics, never a change to them.
"""

import random

import pytest

from repro.core import (BatchQuerySession, FTCConfig, FTCLabeling,
                        FTConnectivityOracle, SchemeVariant, canonical_fault_key)
from repro.workloads import FaultModel, GraphFamily, make_graph
from repro.workloads.faults import sample_fault_sets


def _shared_fault_queries(graph, fault_count, num_pairs, seed):
    faults = sample_fault_sets(graph, 1, fault_count,
                               model=FaultModel.TREE_BIASED, seed=seed)[0]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(num_pairs)]
    return list(faults), pairs


@pytest.mark.parametrize("family", [GraphFamily.GRID, GraphFamily.TREE_PLUS_CHORDS,
                                    GraphFamily.ERDOS_RENYI])
@pytest.mark.parametrize("fault_count", [1, 2, 4])
def test_connected_many_cross_check(family, fault_count):
    """connected_many == fast engine == basic engine == BFS, everywhere."""
    graph = make_graph(family, n=30, seed=60 + fault_count, density=1.8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=4))
    for round_index in range(3):
        faults, pairs = _shared_fault_queries(
            graph, fault_count, num_pairs=12, seed=100 * fault_count + round_index)
        batched = labeling.connected_many(pairs, faults)
        for (s, t), answer in zip(pairs, batched):
            assert answer == graph.connected(s, t, removed=faults)
            assert answer == labeling.connected(s, t, faults, use_fast_engine=True)
            assert answer == labeling.connected(s, t, faults, use_fast_engine=False)


def test_session_zero_faults_and_identical_vertices():
    graph = make_graph(GraphFamily.GRID, n=16, seed=1)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    vertices = sorted(graph.vertices())
    pairs = [(vertices[0], vertices[0]), (vertices[0], vertices[-1])]
    assert labeling.connected_many(pairs, faults=()) == [True, True]
    session = labeling.batch_session(())
    assert session.num_fragments() == 1
    assert session.num_components() == 1


def test_session_cache_shares_canonical_fault_sets():
    """Permutations and redundant restatements of a fault set share a session."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=24, seed=5, density=1.5)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=3))
    faults, _ = _shared_fault_queries(graph, 3, num_pairs=1, seed=9)
    session = labeling.batch_session(faults)
    assert labeling.batch_session(list(reversed(faults))) is session
    # Restating one fault twice dedups to the same canonical key.
    assert labeling.batch_session([faults[0]] + faults[:2]) is not session
    duplicated = labeling.batch_session(faults[:2] + [faults[0]])
    assert duplicated is labeling.batch_session(faults[:2])


def test_canonical_key_matches_fragment_structure_dedup():
    """The cache key and FragmentStructure must dedup the same way."""
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=24, seed=8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=4))
    faults, _ = _shared_fault_queries(graph, 4, num_pairs=1, seed=12)
    fault_labels = [labeling.edge_label(u, v) for u, v in faults]
    session = BatchQuerySession(labeling.outdetect, labeling.instance.codec,
                                fault_labels)
    key = canonical_fault_key(fault_labels)
    assert session.key == key
    # The number of deduplicated faults is the number of non-root fragments.
    assert len(key) == session.structure.num_fragments() - 1
    # Duplicating labels changes neither the key nor the decomposition size.
    doubled = BatchQuerySession(labeling.outdetect, labeling.instance.codec,
                                fault_labels + fault_labels)
    assert doubled.key == key
    assert doubled.num_fragments() == session.num_fragments()
    assert doubled.num_components() == session.num_components()


def test_decoder_session_is_labels_only():
    """The decoder-side batched API works from detached label objects."""
    graph = make_graph(GraphFamily.GRID, n=25, seed=3)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    decoder = labeling.decoder()
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=10, seed=21)
    fault_labels = [labeling.edge_label(u, v) for u, v in faults]
    label_pairs = [(labeling.vertex_label(s), labeling.vertex_label(t))
                   for s, t in pairs]
    answers = decoder.connected_many(label_pairs, fault_labels)
    for (s, t), answer in zip(pairs, answers):
        assert answer == graph.connected(s, t, removed=faults)
    session = decoder.session(fault_labels)
    assert session.connected_many(label_pairs) == answers
    assert session.queries_answered == len(pairs)


def test_oracle_counts_queries_once():
    """Satellite: connected delegating to a cached session must count each
    query exactly once (no double counting)."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=20, seed=14, density=1.4)
    oracle = FTConnectivityOracle(graph, max_faults=2)
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=6, seed=31)
    assert oracle.queries_answered == 0
    oracle.connected(*pairs[0], faults)
    assert oracle.queries_answered == 1
    oracle.connected_many(pairs, faults)
    assert oracle.queries_answered == 1 + len(pairs)
    # Repeated single queries reuse the cached session and still count.
    for s, t in pairs:
        oracle.connected(s, t, faults)
    assert oracle.queries_answered == 1 + 2 * len(pairs)


def test_oracle_basic_engine_escape_hatch():
    graph = make_graph(GraphFamily.GRID, n=16, seed=2)
    oracle = FTConnectivityOracle(graph, max_faults=2, use_fast_engine=False)
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=5, seed=17)
    answers = oracle.connected_many(pairs, faults)
    assert answers == [graph.connected(s, t, removed=faults) for s, t in pairs]


def test_connected_many_accepts_fault_iterator():
    """The fault iterable must be materialized once, not consumed twice."""
    graph = make_graph(GraphFamily.GRID, n=16, seed=9)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=4, seed=8)
    answers = labeling.connected_many(pairs, iter(faults))
    assert answers == [graph.connected(s, t, removed=faults) for s, t in pairs]


def test_budget_check_applies_to_deduplicated_faults():
    """Restating a fault (in either orientation) must not blow the budget."""
    graph = make_graph(GraphFamily.GRID, n=16, seed=11)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=3, seed=13)
    (u, v) = faults[0]
    restated = faults + [(v, u)]
    assert len(restated) == 3
    answers = labeling.connected_many(pairs, restated)
    assert answers == [graph.connected(s, t, removed=faults) for s, t in pairs]
    assert labeling.connected(*pairs[0], restated) == answers[0]


def test_practical_threshold_rule_batched_answers_or_fails_loudly():
    """With heuristic PRACTICAL thresholds the batched path must either match
    ground truth or raise QueryFailure — never silently mis-answer."""
    from repro.core import QueryFailure
    from repro.hierarchy.config import ThresholdRule

    graph = make_graph(GraphFamily.ERDOS_RENYI, n=40, seed=21)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2,
                                            threshold_rule=ThresholdRule.PRACTICAL))
    for seed in range(4):
        faults, pairs = _shared_fault_queries(graph, 2, num_pairs=6, seed=seed)
        try:
            answers = labeling.connected_many(pairs, faults)
        except QueryFailure:
            continue
        assert answers == [graph.connected(s, t, removed=faults) for s, t in pairs]


def test_connected_many_rejects_fault_budget_violation():
    graph = make_graph(GraphFamily.GRID, n=16, seed=4)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    faults, pairs = _shared_fault_queries(graph, 2, num_pairs=2, seed=3)
    assert len(faults) == 2
    with pytest.raises(ValueError):
        labeling.connected_many(pairs, faults)


def test_sketch_variant_batched_queries_mostly_correct():
    """The batched path works for randomized sketch labels too (with the
    per-query fallback when the eager decomposition cannot decode)."""
    graph = make_graph(GraphFamily.GRID, n=25, seed=43)
    labeling = FTCLabeling(graph, FTCConfig(
        max_faults=2, variant=SchemeVariant.SKETCH_FULL, random_seed=3))
    wrong = 0
    for seed in range(6):
        faults, pairs = _shared_fault_queries(graph, 2, num_pairs=8, seed=seed)
        try:
            answers = labeling.connected_many(pairs, faults)
        except Exception:
            wrong += 1
            continue
        wrong += sum(1 for (s, t), answer in zip(pairs, answers)
                     if answer != graph.connected(s, t, removed=faults))
    assert wrong <= 2


def test_fast_engine_alive_counter_large_fault_set():
    """Satellite: the merge loop must stay correct with many faults (the
    quadratic alive-scan fix must not change any answers)."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=60, seed=77, density=1.3)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=8))
    faults, pairs = _shared_fault_queries(graph, 8, num_pairs=15, seed=55)
    batched = labeling.connected_many(pairs, faults)
    for (s, t), answer in zip(pairs, batched):
        expected = graph.connected(s, t, removed=faults)
        assert answer == expected
        assert labeling.connected(s, t, faults, use_fast_engine=True) == expected


def test_session_cache_threaded_stress():
    """Satellite: the session LRU must survive concurrent access — threaded
    executors and the query server share one oracle, so hammering
    ``batch_session`` / ``connected_many`` from many threads over more fault
    sets than the cache holds (constant eviction churn) must corrupt nothing
    and change no answers."""
    import threading

    graph = make_graph(GraphFamily.ERDOS_RENYI, n=30, seed=19)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=3))
    labeling.SESSION_CACHE_SIZE = 3  # force eviction churn
    workloads = []
    for seed in range(9):  # 3x more distinct fault sets than cache slots
        faults, pairs = _shared_fault_queries(graph, 3, num_pairs=6, seed=seed)
        expected = [graph.connected(s, t, removed=faults) for s, t in pairs]
        workloads.append((faults, pairs, expected))

    errors = []
    barrier = threading.Barrier(8)

    def worker(worker_index):
        rng = random.Random(worker_index)
        barrier.wait()
        try:
            for _ in range(30):
                faults, pairs, expected = workloads[rng.randrange(len(workloads))]
                if rng.random() < 0.5:
                    session = labeling.batch_session(faults)
                    # A cached session must always be the right decomposition.
                    assert session.key == canonical_fault_key(
                        [labeling.edge_label(u, v) for u, v in faults])
                else:
                    assert labeling.connected_many(pairs, faults) == expected
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    info = labeling.session_cache_info()
    assert info["size"] <= info["max_size"] == 3
    assert info["evictions"] > 0
    # The cache still works normally after the stampede.
    faults, pairs, expected = workloads[0]
    assert labeling.connected_many(pairs, faults) == expected
    assert labeling.batch_session(faults) is labeling.batch_session(list(reversed(faults)))


# ---------------------------------------------------------------- build_sessions

def _session_workload(seed=11, n=30, num_sets=4, max_faults=3):
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=n, seed=seed, density=1.8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=max_faults))
    fault_sets = [list(faults) for faults in sample_fault_sets(
        graph, num_sets, max_faults, model=FaultModel.TREE_BIASED, seed=seed)]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(25)]
    return graph, labeling, fault_sets, pairs


@pytest.mark.parametrize("spec", ["serial", "thread:2", "process:2"])
def test_build_sessions_executors_agree(spec):
    """Every executor builds the same decompositions a warm cache would hold."""
    graph, labeling, fault_sets, pairs = _session_workload()
    reference = [labeling.batch_session(faults) for faults in fault_sets]
    expected = [labeling.connected_many(pairs, faults) for faults in fault_sets]

    labeling._session_cache.clear()
    sessions = labeling.build_sessions(fault_sets, executor=spec)
    assert len(sessions) == len(fault_sets)
    for faults, session, ref, answers in zip(fault_sets, sessions,
                                             reference, expected):
        assert session._component_of == ref._component_of
        assert labeling.connected_many(pairs, faults) == answers
        # The freshly built session is now the cached one.
        assert labeling.batch_session(faults) is session


def test_build_sessions_dedups_and_reuses_cache():
    _, labeling, fault_sets, _ = _session_workload(seed=13)
    sessions = labeling.build_sessions(fault_sets)
    # A second call with duplicates returns cached objects in input order.
    again = labeling.build_sessions(
        [fault_sets[0]] + fault_sets + [list(reversed(fault_sets[0]))])
    assert again[0] is sessions[0]
    assert again[1:-1] == sessions
    assert again[-1] is sessions[0]
    assert labeling.build_sessions([]) == []


def test_prewarm_sessions_primes_the_server_cache():
    import asyncio

    from repro.server.session_manager import SessionManager

    _, labeling, fault_sets, pairs = _session_workload(seed=17)
    labeling._session_cache.clear()

    async def scenario():
        manager = SessionManager(labeling)
        try:
            count = await manager.prewarm_sessions(fault_sets, jobs=1)
            assert count == len(fault_sets)
            assert await manager.prewarm_sessions([]) == 0
            await manager.session(fault_sets[0])
            return manager.stats()
        finally:
            manager.close()

    stats = asyncio.run(scenario())
    assert stats["sessions"]["hits"] >= 1
