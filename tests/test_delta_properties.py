"""Property-based delta + hot-swap tests (requires ``hypothesis``; skipped
without).

Three properties over *generated* graphs and edge edits, not hand-picked ones:

* **Delta round-trip**: ``apply_delta(base, diff_snapshots(base, target))``
  reconstructs the target snapshot byte-for-byte, whichever container version
  (v1/v2) carries the endpoints.
* **Incremental == scratch**: rebuilding through
  :func:`repro.delta.incremental_labeling` (which may reuse untouched
  per-level shards) produces snapshot bytes identical to a from-scratch
  build of the edited graph.
* **Swap bit-identity**: a server answering before, during, and after a hot
  swap returns exactly what a fresh oracle on the new snapshot returns.

Examples are intentionally few (labeling construction dominates the runtime)
but each example covers a whole generated edit + workload.
"""

import asyncio
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core import FTCConfig, FTCLabeling, FTCSnapshot, load_snapshot  # noqa: E402
from repro.delta import apply_delta, apply_edge_diff, diff_snapshots, \
    incremental_labeling  # noqa: E402
from repro.workloads import GraphFamily, make_graph  # noqa: E402

MAX_FAULTS = 2

FAMILIES = [GraphFamily.ERDOS_RENYI, GraphFamily.GRID,
            GraphFamily.TREE_PLUS_CHORDS]

world_strategy = st.tuples(
    st.sampled_from(FAMILIES),
    st.integers(min_value=8, max_value=20),     # graph size
    st.integers(min_value=0, max_value=2**16),  # graph seed
    st.integers(min_value=0, max_value=2**16),  # edit/query seed
)


def _build(family, n, seed):
    graph = make_graph(family, n=n, seed=seed, density=1.5)
    return graph, FTCLabeling(graph, FTCConfig(max_faults=MAX_FAULTS))


def _generate_edit(graph, seed):
    """A safe random edit: add up to two non-edges, remove up to one edge
    whose removal keeps its endpoints connected (so every family stays in
    the regime all scheme variants support)."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    edges = sorted(tuple(sorted(edge)) for edge in graph.edges())
    edge_set = set(edges)
    add_edges = []
    for _ in range(30):
        if len(add_edges) >= rng.randint(1, 2):
            break
        u, v = rng.sample(vertices, 2)
        key = tuple(sorted((u, v)))
        if key not in edge_set and key not in add_edges:
            add_edges.append(key)
    remove_edges = []
    if rng.random() < 0.5:
        candidates = [edge for edge in edges
                      if graph.connected(edge[0], edge[1], removed=[edge])]
        if candidates:
            remove_edges.append(rng.choice(candidates))
    return add_edges, remove_edges


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(world=world_strategy)
def test_delta_round_trip_is_byte_identical(world):
    family, n, graph_seed, edit_seed = world
    graph, base = _build(family, n, graph_seed)
    add_edges, remove_edges = _generate_edit(graph, edit_seed)
    target_graph = apply_edge_diff(graph, add_edges=add_edges,
                                   remove_edges=remove_edges)
    target = FTCLabeling(target_graph, FTCConfig(max_faults=MAX_FAULTS))

    base_v1 = base.to_snapshot_bytes()
    target_v1 = target.to_snapshot_bytes()
    assert apply_delta(base_v1, diff_snapshots(base_v1, target_v1)) == target_v1

    base_v2 = FTCSnapshot.from_bytes(base_v1, decode_labels=False).to_bytes_v2()
    target_v2 = FTCSnapshot.from_bytes(target_v1,
                                       decode_labels=False).to_bytes_v2()
    assert apply_delta(base_v2, diff_snapshots(base_v2, target_v2)) == target_v2


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(world=world_strategy)
def test_incremental_build_matches_scratch_bytes(world):
    family, n, graph_seed, edit_seed = world
    graph, base = _build(family, n, graph_seed)
    add_edges, remove_edges = _generate_edit(graph, edit_seed)

    incremental = incremental_labeling(base, add_edges=add_edges,
                                       remove_edges=remove_edges)
    target_graph = apply_edge_diff(graph, add_edges=add_edges,
                                   remove_edges=remove_edges)
    scratch = FTCLabeling(target_graph, FTCConfig(max_faults=MAX_FAULTS))
    assert incremental.to_snapshot_bytes() == scratch.to_snapshot_bytes()


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(world=world_strategy)
def test_answers_across_a_swap_are_bit_identical(world):
    family, n, graph_seed, edit_seed = world
    graph, base = _build(family, n, graph_seed)
    add_edges, remove_edges = _generate_edit(graph, edit_seed)
    target_graph = apply_edge_diff(graph, add_edges=add_edges,
                                   remove_edges=remove_edges)
    target = FTCLabeling(target_graph, FTCConfig(max_faults=MAX_FAULTS))
    base_bytes = base.to_snapshot_bytes()
    target_bytes = target.to_snapshot_bytes()

    # Queries valid on both sides: fault edges drawn from the shared edges.
    rng = random.Random(edit_seed)
    shared = sorted(set(tuple(sorted(e)) for e in graph.edges()) &
                    set(tuple(sorted(e)) for e in target_graph.edges()))
    vertices = sorted(graph.vertices())
    queries = []
    for _ in range(8):
        faults = rng.sample(shared, rng.randint(0, min(MAX_FAULTS, len(shared))))
        s, t = rng.sample(vertices, 2)
        queries.append((s, t, faults))

    from repro.server import AsyncQueryClient, QueryServer

    async def drive():
        server = QueryServer(load_snapshot(base_bytes), port=0)
        await server.start()
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                before = [await client.connected(s, t, faults)
                          for s, t, faults in queries]
                await server.sessions.swap_oracle(
                    lambda: load_snapshot(target_bytes))
                after = [await client.connected(s, t, faults)
                         for s, t, faults in queries]
            finally:
                await client.close()
        finally:
            await server.close()
        return before, after

    before, after = asyncio.run(drive())
    base_oracle = load_snapshot(base_bytes)
    target_oracle = load_snapshot(target_bytes)
    assert before == [base_oracle.connected(s, t, faults)
                      for s, t, faults in queries]
    assert after == [target_oracle.connected(s, t, faults)
                     for s, t, faults in queries]
