"""Tests for the FTCS-D delta format and incremental rebuild (:mod:`repro.delta`).

The delta contract, in order of importance:

1. **Byte-identity** — ``apply_delta(base, diff_snapshots(base, target))``
   reconstructs the target snapshot byte-for-byte, both container versions.
2. **Fail closed** — applying against the wrong base, a truncated delta, or a
   corrupted payload raises :class:`~repro.errors.DeltaError` (digest-checked
   at both ends); the file wrapper never leaves a partial destination behind.
3. **Incremental == scratch** — the shard-reusing rebuild produces bytes
   identical to a from-scratch build, and actually reuses shards when the
   edit leaves whole levels untouched.
4. **Facade + CLI** — ``Oracle.build_delta`` / ``repro snapshot-diff`` /
   ``repro snapshot-apply`` are the only seams entry points need.
"""

import json

import pytest

from repro.cli import main
from repro.core import FTCConfig, FTCLabeling, FTCSnapshot
from repro.delta import (DELTA_MAGIC, apply_delta, apply_delta_file,
                         apply_edge_diff, describe_delta, diff_snapshot_files,
                         diff_snapshots, incremental_labeling, plan_edge_diff)
from repro.errors import DeltaError
from repro.graphs.graph import Graph
from repro.workloads import GraphFamily, make_graph

MAX_FAULTS = 2


@pytest.fixture(scope="module")
def world():
    """Base + edited labelings over one medium graph (construction is slow)."""
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=28, seed=11)
    base = FTCLabeling(graph, FTCConfig(max_faults=MAX_FAULTS))
    vertices = sorted(graph.vertices())
    non_edges = [(u, v) for i, u in enumerate(vertices)
                 for v in vertices[i + 1:] if not graph.has_edge(u, v)]
    add_edges = non_edges[:2]
    target_graph = apply_edge_diff(graph, add_edges=add_edges)
    target = FTCLabeling(target_graph, FTCConfig(max_faults=MAX_FAULTS))
    return graph, base, add_edges, target_graph, target


# ------------------------------------------------------------------ format

def test_delta_round_trip_v1_and_v2(world):
    _, base, _, _, target = world
    base_v1 = base.to_snapshot_bytes()
    target_v1 = target.to_snapshot_bytes()
    delta = diff_snapshots(base_v1, target_v1)
    assert delta[:4] == DELTA_MAGIC
    assert apply_delta(base_v1, delta) == target_v1

    base_v2 = FTCSnapshot.from_bytes(base_v1, decode_labels=False).to_bytes_v2()
    target_v2 = FTCSnapshot.from_bytes(target_v1,
                                       decode_labels=False).to_bytes_v2()
    delta_v2 = diff_snapshots(base_v2, target_v2)
    assert apply_delta(base_v2, delta_v2) == target_v2


def test_describe_delta_reports_structure(world):
    _, base, add_edges, _, target = world
    base_bytes = base.to_snapshot_bytes()
    delta = diff_snapshots(base_bytes, target.to_snapshot_bytes())
    report = describe_delta(delta)
    assert report["format"] == "ftcs-delta"
    assert report["delta_version"] == 1
    # Every added edge shows up; vertex labels change for (at least) the
    # touched endpoints.
    assert report["edge_added"] >= len(add_edges)
    assert report["vertex_changed"] > 0
    assert report["bytes"] == len(delta)


def test_identity_delta_is_small_and_applies(world):
    _, base, _, _, _ = world
    data = base.to_snapshot_bytes()
    delta = diff_snapshots(data, data)
    report = describe_delta(delta)
    assert report["vertex_changed"] == report["edge_changed"] == 0
    assert report["vertex_added"] == report["edge_added"] == 0
    assert report["vertex_removed"] == report["edge_removed"] == 0
    assert len(delta) < len(data)
    assert apply_delta(data, delta) == data


# -------------------------------------------------------------- fail closed

def test_apply_against_wrong_base_fails_closed(world):
    _, base, _, _, target = world
    base_bytes = base.to_snapshot_bytes()
    target_bytes = target.to_snapshot_bytes()
    delta = diff_snapshots(base_bytes, target_bytes)
    with pytest.raises(DeltaError, match="base"):
        apply_delta(target_bytes, delta)


def test_truncated_and_corrupt_deltas_fail_closed(world):
    _, base, _, _, target = world
    base_bytes = base.to_snapshot_bytes()
    delta = diff_snapshots(base_bytes, target.to_snapshot_bytes())
    with pytest.raises(DeltaError):
        apply_delta(base_bytes, delta[: len(delta) // 2])
    with pytest.raises(DeltaError):
        apply_delta(base_bytes, b"NOPE" + delta[4:])
    # Flip one payload byte: the target digest check must catch it.
    corrupted = bytearray(delta)
    corrupted[-1] ^= 0xFF
    with pytest.raises(DeltaError):
        apply_delta(base_bytes, bytes(corrupted))


def test_apply_file_failure_writes_nothing(tmp_path, world):
    _, base, _, _, target = world
    base_path = tmp_path / "base.ftcs"
    target_path = tmp_path / "target.ftcs"
    base_path.write_bytes(base.to_snapshot_bytes())
    target_path.write_bytes(target.to_snapshot_bytes())
    delta_path = tmp_path / "edit.ftcsd"
    diff_snapshot_files(base_path, target_path, delta_path)
    out = tmp_path / "rebuilt.ftcs"
    with pytest.raises(DeltaError):
        apply_delta_file(target_path, delta_path, out)  # wrong base
    assert not out.exists()


# ------------------------------------------------------------- incremental

def test_incremental_reuses_untouched_levels():
    """A count-preserving chord replacement on a chorded star keeps the
    spanning tree (hub edges always win BFS) and every level's structural
    parameters stable, and touches few enough rows to stay under the reuse
    fraction guard — so at least one per-level shard must be adopted and
    patched instead of recomputed."""
    n = 24
    chords = [(1, 5), (2, 9), (3, 13), (5, 20), (7, 15), (9, 18), (11, 22),
              (4, 17)]
    star = Graph([(0, leaf) for leaf in range(1, n)] + chords)
    base = FTCLabeling(star, FTCConfig(max_faults=MAX_FAULTS))

    incremental = incremental_labeling(base, add_edges=[(5, 21)],
                                       remove_edges=[(5, 20)])
    target_graph = apply_edge_diff(star, add_edges=[(5, 21)],
                                   remove_edges=[(5, 20)])
    scratch = FTCLabeling(target_graph, FTCConfig(max_faults=MAX_FAULTS))
    assert incremental.to_snapshot_bytes() == scratch.to_snapshot_bytes()
    assert incremental.build_report.reused_level_count >= 1


def test_plan_edge_diff_round_trips(world):
    graph, _, add_edges, target_graph, _ = world
    plan = plan_edge_diff(graph, target_graph)
    assert sorted(tuple(sorted(e)) for e in plan["added_edges"]) == \
        sorted(tuple(sorted(e)) for e in add_edges)
    assert plan["removed_edges"] == []
    rebuilt = apply_edge_diff(graph, add_edges=plan["added_edges"],
                              remove_edges=plan["removed_edges"])
    assert sorted(rebuilt.edges()) == sorted(target_graph.edges())


def test_build_delta_facade_matches_scratch(world):
    from repro.api import Oracle

    graph, _, add_edges, target_graph, target = world
    base_oracle = Oracle.build(graph, max_faults=MAX_FAULTS)
    swapped = Oracle.build_delta(base_oracle, add_edges=add_edges)
    assert swapped.to_snapshot_bytes() == target.to_snapshot_bytes()
    faults = [sorted(target_graph.edges())[0]]
    pairs = [(0, 5), (3, 9), (2, 14)]
    scratch = Oracle.load(target.to_snapshot_bytes())
    assert swapped.connected_many(pairs, faults) == \
        scratch.connected_many(pairs, faults)


def test_build_delta_rejects_labels_only_transports(world):
    from repro.api import Oracle

    _, base, add_edges, _, _ = world
    rehydrated = Oracle.load(base.to_snapshot_bytes())
    with pytest.raises(DeltaError, match="build"):
        Oracle.build_delta(rehydrated, add_edges=add_edges)


# --------------------------------------------------------------------- CLI

def test_cli_diff_apply_round_trip(tmp_path, capsys, world):
    _, base, _, _, target = world
    base_path = tmp_path / "base.ftcs"
    target_path = tmp_path / "target.ftcs"
    base_path.write_bytes(base.to_snapshot_bytes())
    target_path.write_bytes(target.to_snapshot_bytes())
    delta_path = tmp_path / "edit.ftcsd"
    rebuilt_path = tmp_path / "rebuilt.ftcs"

    assert main(["snapshot-diff", "--base", str(base_path),
                 "--target", str(target_path),
                 "--output", str(delta_path)]) == 0
    diff_report = json.loads(capsys.readouterr().out)
    assert diff_report["format"] == "ftcs-delta"

    assert main(["snapshot-apply", "--base", str(base_path),
                 "--delta", str(delta_path),
                 "--output", str(rebuilt_path)]) == 0
    apply_report = json.loads(capsys.readouterr().out)
    assert apply_report["target_sha256"] == diff_report["target_sha256"]
    assert rebuilt_path.read_bytes() == target_path.read_bytes()


def test_cli_apply_wrong_base_is_reported(tmp_path, capsys, world):
    _, base, _, _, target = world
    base_path = tmp_path / "base.ftcs"
    target_path = tmp_path / "target.ftcs"
    base_path.write_bytes(base.to_snapshot_bytes())
    target_path.write_bytes(target.to_snapshot_bytes())
    delta_path = tmp_path / "edit.ftcsd"
    assert main(["snapshot-diff", "--base", str(base_path),
                 "--target", str(target_path),
                 "--output", str(delta_path)]) == 0
    capsys.readouterr()
    assert main(["snapshot-apply", "--base", str(target_path),
                 "--delta", str(delta_path),
                 "--output", str(tmp_path / "x.ftcs")]) == 2
    assert "base" in capsys.readouterr().err


def test_cli_diff_missing_file_is_reported(tmp_path, capsys):
    assert main(["snapshot-diff", "--base", str(tmp_path / "missing.ftcs"),
                 "--target", str(tmp_path / "also-missing.ftcs"),
                 "--output", str(tmp_path / "out.ftcsd")]) == 2
    assert capsys.readouterr().err
