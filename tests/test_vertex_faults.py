"""Tests for the vertex-fault-tolerant reduction and adaptive prefix decoding (Prop. 6)."""

import itertools
import random

import networkx as nx
import pytest

from repro.applications.vertex_faults import VertexFaultTolerantLabeling
from repro.coding import SparseRecoveryDecoder, SyndromeEncoder
from repro.gf2 import GF2m
from repro.graphs import Graph


def random_connected_graph(n, m, seed):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


# ------------------------------------------------------------- vertex faults

def test_vertex_fault_scheme_matches_ground_truth():
    graph = random_connected_graph(12, 24, seed=1)
    scheme = VertexFaultTolerantLabeling(graph, max_vertex_faults=2)
    rng = random.Random(2)
    vertices = sorted(graph.vertices())
    for _ in range(60):
        failed = rng.sample(vertices, rng.randint(0, 2))
        alive = [v for v in vertices if v not in failed]
        if len(alive) < 2:
            continue
        s, t = rng.sample(alive, 2)
        assert scheme.connected(s, t, failed) == scheme.connected_exact(s, t, failed)


def test_vertex_fault_failed_endpoint_is_disconnected():
    graph = random_connected_graph(10, 18, seed=3)
    scheme = VertexFaultTolerantLabeling(graph, max_vertex_faults=1)
    vertices = sorted(graph.vertices())
    assert scheme.connected(vertices[0], vertices[1], [vertices[0]]) is False
    assert scheme.connected(vertices[0], vertices[0], []) is True


def test_vertex_fault_cut_vertex():
    # Two triangles sharing the articulation vertex 2.
    graph = Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
    scheme = VertexFaultTolerantLabeling(graph, max_vertex_faults=1)
    assert scheme.connected(0, 4, [2]) is False
    assert scheme.connected(0, 1, [2]) is True
    assert scheme.connected(3, 4, [2]) is True


def test_vertex_fault_budget_enforced_and_label_size():
    graph = random_connected_graph(10, 20, seed=4)
    scheme = VertexFaultTolerantLabeling(graph, max_vertex_faults=1)
    with pytest.raises(ValueError):
        scheme.connected(0, 1, [2, 3])
    with pytest.raises(ValueError):
        VertexFaultTolerantLabeling(graph, max_vertex_faults=0)
    assert scheme.max_label_bits() > 0


def test_vertex_fault_exhaustive_small_graph():
    graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (2, 4)])
    scheme = VertexFaultTolerantLabeling(graph, max_vertex_faults=2)
    vertices = sorted(graph.vertices())
    for failed in itertools.chain([()], itertools.combinations(vertices, 1),
                                  itertools.combinations(vertices, 2)):
        for s, t in itertools.combinations(vertices, 2):
            if s in failed or t in failed:
                assert scheme.connected(s, t, failed) is False
                continue
            assert scheme.connected(s, t, failed) == scheme.connected_exact(s, t, failed)


# -------------------------------------------------- Proposition 6 (prefix decoding)

def test_prefix_of_syndrome_is_lower_threshold_syndrome():
    """Proposition 6: the 2k'-prefix of a 2k syndrome is the k'-threshold syndrome."""
    field = GF2m(16)
    big = SyndromeEncoder(field, threshold=8)
    small = SyndromeEncoder(field, threshold=3)
    support = [5, 900, 12345]
    assert big.syndrome_of(support)[:6] == small.syndrome_of(support)


def test_prefix_decoding_recovers_small_supports():
    field = GF2m(16)
    big = SyndromeEncoder(field, threshold=8)
    small_decoder = SparseRecoveryDecoder(field, threshold=2)
    support = [7, 4242]
    prefix = big.syndrome_of(support)[:4]
    assert small_decoder.decode(prefix) == sorted(support)
