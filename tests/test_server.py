"""Tests for the concurrent connectivity query server (:mod:`repro.server`).

The server's contract, in order of importance:

1. **Bit-identity** — answers over the wire equal
   ``load_snapshot(X).connected_many(...)`` in process, always.
2. **Session sharing** — concurrent requests carrying one canonical fault set
   build one :class:`~repro.core.batch.BatchQuerySession` (LRU hit or
   single-flight coalesce), visible in the hit-rate metric.
3. **Fail closed per request** — adversarial input (malformed JSON, oversized
   lines, unknown ops, non-vertex ids) gets a structured error response and
   the connection keeps working.
4. **Clean shutdown** — close() drops clients and stops accepting.

The suite drives the asyncio server with ``asyncio.run`` from synchronous
tests (no pytest-asyncio dependency).
"""

import asyncio
import json
import random
import threading

import pytest

from repro.core.config import FTCConfig
from repro.core.ftc import FTCLabeling
from repro.core.snapshot import load_snapshot
from repro.server import (AsyncQueryClient, BackgroundServer, QueryClient,
                          QueryServer, ServerError, SessionManager)
from repro.server import protocol
from repro.server.protocol import (ProtocolError, parse_request,
                                   vertex_from_wire, vertex_to_wire)
from repro.workloads import FaultModel, GraphFamily, make_graph
from repro.workloads.faults import sample_fault_sets

MAX_FAULTS = 3


@pytest.fixture(scope="module")
def world():
    """One graph + snapshot shared by the whole module (construction is slow)."""
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=30, seed=7)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=MAX_FAULTS))
    data = labeling.to_snapshot_bytes()
    return graph, data


@pytest.fixture
def oracle(world):
    _, data = world
    return load_snapshot(data)


def workload(graph, num_sets, num_pairs, seed=0):
    """Distinct fault sets plus query pairs, with BFS ground truth."""
    fault_sets = sample_fault_sets(graph, num_sets, MAX_FAULTS,
                                   model=FaultModel.TREE_BIASED, seed=seed)
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    out = []
    for faults in fault_sets:
        faults = list(faults)
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(num_pairs)]
        truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
        out.append((faults, pairs, truth))
    return out


async def _start(oracle, **kwargs):
    server = QueryServer(oracle, port=0, **kwargs)
    await server.start()
    return server


# ------------------------------------------------------------ protocol unit

def test_vertex_wire_round_trip():
    for vertex in [0, -3, "a", "with space", (1, 2), ("grid", (3, 4))]:
        assert vertex_from_wire(json.loads(json.dumps(vertex_to_wire(vertex)))) == vertex


@pytest.mark.parametrize("bad", [True, False, None, 1.5, {"a": 1}, [1, [True]]])
def test_vertex_from_wire_rejects_non_vertex_values(bad):
    with pytest.raises(ProtocolError) as info:
        vertex_from_wire(bad)
    assert info.value.code == protocol.E_BAD_REQUEST


def test_vertex_from_wire_rejects_deep_nesting():
    nested = 0
    for _ in range(protocol.MAX_VERTEX_DEPTH + 2):
        nested = [nested]
    with pytest.raises(ProtocolError):
        vertex_from_wire(nested)


@pytest.mark.parametrize("line,code", [
    (b"\xff\xfe garbage", protocol.E_MALFORMED),
    (b"not json", protocol.E_MALFORMED),
    (b"[1, 2]", protocol.E_BAD_REQUEST),
    (b'"ping"', protocol.E_BAD_REQUEST),
    (b"{}", protocol.E_BAD_REQUEST),
    (b'{"op": 5}', protocol.E_BAD_REQUEST),
    (b'{"op": "ping", "id": true}', protocol.E_BAD_REQUEST),
    (b'{"op": "ping", "id": [1]}', protocol.E_BAD_REQUEST),
])
def test_parse_request_fails_closed(line, code):
    with pytest.raises(ProtocolError) as info:
        parse_request(line)
    assert info.value.code == code


def test_parse_request_fuzz_never_raises_anything_else():
    """Random bytes must yield ProtocolError or a dict — nothing else."""
    rng = random.Random(99)
    corpus = [bytes(rng.randrange(256) for _ in range(rng.randrange(0, 60)))
              for _ in range(300)]
    corpus += [b'{"op":' + bytes([b]) + b"}" for b in range(32, 127)]
    for line in corpus:
        try:
            request = parse_request(line)
        except ProtocolError:
            continue
        assert isinstance(request, dict)


# ------------------------------------------------------------- bit-identity

def test_server_answers_bit_identical_to_inprocess(world, oracle):
    """Acceptance: wire answers == load_snapshot(X).connected_many(...)."""
    graph, data = world
    reference = load_snapshot(data)  # independent in-process oracle

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        for faults, pairs, truth in workload(graph, num_sets=4, num_pairs=15):
            answers = await client.connected_many(pairs, faults)
            assert answers == reference.connected_many(pairs, faults)
            assert answers == truth
            # Single-pair op agrees with the batch op.
            assert (await client.connected(*pairs[0], faults)) == answers[0]
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_session_info_op_reports_local_structure(world, oracle):
    """``session_info`` (the wire backing of the remote ``batch_session``)
    matches the in-process session's decomposition, shares the LRU, and maps
    an over-budget fault set to the structured error."""
    graph, _ = world

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        (faults, _, _), = workload(graph, num_sets=1, num_pairs=2, seed=21)
        info = await client.session_info(faults)
        local = oracle.batch_session(faults)
        assert info["num_components"] == local.num_components()
        assert info["num_fragments"] == local.num_fragments()
        # The op ensured the shared session: a second ask is a cache hit.
        before = server.metrics.snapshot()["sessions"]
        await client.session_info(faults)
        after = server.metrics.snapshot()["sessions"]
        assert after["hits"] == before["hits"] + 1
        over_budget = sorted(graph.edges())[:MAX_FAULTS + 1]
        with pytest.raises(ServerError) as caught:
            await client.session_info(over_budget)
        assert caught.value.code == protocol.E_OVER_BUDGET
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_corrupt_label_payload_reports_decode_error(world):
    """A lazily decoded corrupt label blob must surface as ``label-decode-
    failed`` — not ``over-budget`` (LabelDecodeError *is* a ValueError, so
    the dispatch order matters)."""
    from repro.core.snapshot import FTCSnapshot

    _, data = world
    lazy = FTCSnapshot.from_bytes(data, decode_labels=False)
    vertex = next(iter(lazy.vertex_labels))
    blob = lazy.vertex_labels[vertex]
    lazy.vertex_labels[vertex] = blob[:-1] + b"\x80"  # same length, truncated varint
    poisoned = load_snapshot(lazy.to_bytes())
    other = next(v for v in poisoned.vertices() if v != vertex)

    async def scenario():
        server = await _start(poisoned)
        client = await AsyncQueryClient.connect(server.host, server.port)
        with pytest.raises(ServerError) as caught:
            await client.connected(vertex, other)
        assert caught.value.code == protocol.E_DECODE
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_ping_and_stats_ops(oracle):
    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        pong = await client.ping()
        assert pong == {"pong": True, "protocol": protocol.PROTOCOL_VERSION}
        stats = await client.stats()
        assert stats["oracle"]["max_faults"] == MAX_FAULTS
        assert stats["oracle"]["vertices"] == oracle.num_vertices()
        assert stats["server"]["requests_by_op"]["ping"] == 1
        assert stats["server"]["session_cache"]["size"] == 0
        await client.close()
        await server.close()

    asyncio.run(scenario())


# --------------------------------------------------------- session sharing

def test_concurrent_clients_share_one_session(world, oracle):
    """A thundering herd on one fault set builds exactly one session."""
    graph, _ = world
    (faults, pairs, truth), = workload(graph, num_sets=1, num_pairs=10)
    num_clients = 8

    async def scenario():
        server = await _start(oracle)
        clients = [await AsyncQueryClient.connect(server.host, server.port)
                   for _ in range(num_clients)]
        results = await asyncio.gather(
            *[client.connected_many(pairs, faults) for client in clients])
        assert all(result == truth for result in results)
        sessions = server.metrics.snapshot()["sessions"]
        # One construction; everyone else reused it (cache hit before the
        # build started, coalesced onto the in-flight build after).
        assert sessions["misses"] == 1
        assert sessions["hits"] + sessions["coalesced"] == num_clients - 1
        assert sessions["hit_rate"] == pytest.approx((num_clients - 1) / num_clients)
        assert oracle.session_cache_info()["size"] == 1
        for client in clients:
            await client.close()
        await server.close()

    asyncio.run(scenario())


def test_distinct_fault_sets_get_distinct_sessions(world, oracle):
    graph, _ = world
    batches = workload(graph, num_sets=3, num_pairs=6, seed=5)

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        for faults, pairs, truth in batches:
            assert (await client.connected_many(pairs, faults)) == truth
        sessions = server.metrics.snapshot()["sessions"]
        distinct = len({tuple(sorted(map(tuple, faults)))
                        for faults, _, _ in batches})
        assert sessions["misses"] == distinct
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_session_eviction_under_max_sessions_pressure(world, oracle):
    """Satellite: with --max-sessions pressure, evicted sessions rebuild
    correctly and the metrics report the eviction count."""
    graph, _ = world
    batches = workload(graph, num_sets=4, num_pairs=8, seed=11)

    async def scenario():
        server = await _start(oracle, max_sessions=2)
        assert oracle.SESSION_CACHE_SIZE == 2
        client = await AsyncQueryClient.connect(server.host, server.port)
        for faults, pairs, truth in batches:  # 4 distinct sets through 2 slots
            assert (await client.connected_many(pairs, faults)) == truth
        info = oracle.session_cache_info()
        assert info["size"] <= 2
        assert info["evictions"] >= 2
        stats = (await client.stats())["server"]
        assert stats["session_cache"]["evictions"] == info["evictions"]
        assert stats["sessions"]["misses"] == len(batches)
        # The evicted first fault set rebuilds and still answers correctly.
        faults, pairs, truth = batches[0]
        assert (await client.connected_many(pairs, faults)) == truth
        assert (await client.stats())["server"]["sessions"]["misses"] == len(batches) + 1
        await client.close()
        await server.close()

    asyncio.run(scenario())


# -------------------------------------------------------- adversarial input

def _recv_json(reader):
    async def inner():
        return json.loads(await reader.readline())
    return inner()


def test_malformed_lines_get_structured_errors_and_connection_survives(oracle):
    probes = [
        (b"total garbage\n", protocol.E_MALFORMED),
        (b"\xc3\x28 invalid utf8\n", protocol.E_MALFORMED),
        (b"[1,2,3]\n", protocol.E_BAD_REQUEST),
        (b'{"op": "launch-missiles"}\n', protocol.E_UNKNOWN_OP),
        (b'{"op": "connected"}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected", "s": 1.5, "t": 2, "faults": []}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected", "s": true, "t": 2}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected_many", "pairs": []}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected_many", "pairs": [[1]]}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected_many", "pairs": 7}\n', protocol.E_BAD_REQUEST),
        (b'{"op": "connected", "s": "no-such-vertex", "t": "also-missing"}\n',
         protocol.E_UNKNOWN_VERTEX),
        (b'{"op": "connected", "s": 0, "t": 1, "faults": [["x", "y"]]}\n',
         protocol.E_UNKNOWN_EDGE),
        (b'{"op": "connected", "s": 0, "t": 1, "faults": [[2, 2]]}\n',
         protocol.E_BAD_REQUEST),  # self-loop fault, not an over-budget error
    ]

    async def scenario():
        server = await _start(oracle)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        for line, code in probes:
            writer.write(line)
            await writer.drain()
            response = await _recv_json(reader)
            assert response["ok"] is False, line
            assert response["error"]["code"] == code, line
        # The connection handler survived every probe.
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        response = await _recv_json(reader)
        assert response["ok"] is True
        writer.close()
        await server.close()

    asyncio.run(scenario())


def test_over_budget_fault_set_is_structured_error(world, oracle):
    graph, _ = world
    edges = sorted(graph.edges())[:MAX_FAULTS + 2]  # distinct tree/non-tree mix

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        vertices = sorted(graph.vertices())
        with pytest.raises(ServerError) as info:
            await client.connected_many([(vertices[0], vertices[1])], edges)
        assert info.value.code == protocol.E_OVER_BUDGET
        # Connection still serves afterwards.
        assert (await client.ping())["pong"] is True
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_oversized_line_is_drained_and_reported(oracle):
    async def scenario():
        server = await _start(oracle, max_request_bytes=4096)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        # One huge (valid-JSON!) line plus a pipelined ping in the same write.
        huge = b'{"op": "ping", "pad": "' + b"x" * 10000 + b'"}\n'
        writer.write(huge + b'{"op": "ping"}\n')
        await writer.drain()
        response = await _recv_json(reader)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_OVERSIZED
        # The pipelined request after the oversized line still got served.
        response = await _recv_json(reader)
        assert response["ok"] is True
        writer.close()
        await server.close()

    asyncio.run(scenario())


def test_unknown_op_names_do_not_pollute_metrics(oracle):
    """Attacker-chosen op strings must not become metrics counter keys."""

    async def scenario():
        server = await _start(oracle)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        for index in range(20):
            writer.write(b'{"op": "bogus-%d"}\n' % index)
            await writer.drain()
            assert (await _recv_json(reader))["ok"] is False
        by_op = server.metrics.snapshot()["requests_by_op"]
        assert set(by_op) == {"invalid"}
        assert by_op["invalid"] == 20
        writer.close()
        await server.close()

    asyncio.run(scenario())


def test_async_client_handles_large_responses(world, oracle):
    """A connected_many answer far past asyncio's 64 KiB default stream limit
    must round-trip (regression: the client passes an explicit limit)."""
    graph, _ = world
    (faults, _, _), = workload(graph, num_sets=1, num_pairs=1)
    vertices = sorted(graph.vertices())
    rng = random.Random(2)
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(15000)]

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        answers = await client.connected_many(pairs, faults)
        assert answers == oracle.connected_many(pairs, faults)
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_wire_fuzz_random_bytes_never_kill_the_handler(oracle):
    rng = random.Random(1234)

    async def scenario():
        server = await _start(oracle, max_request_bytes=4096)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        for _ in range(60):
            blob = bytes(rng.randrange(1, 256) for _ in range(rng.randrange(1, 80)))
            writer.write(blob.replace(b"\n", b" ") + b"\n")
            await writer.drain()
            response = await _recv_json(reader)
            assert response["ok"] is False
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        assert (await _recv_json(reader))["ok"] is True
        writer.close()
        await server.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------- shutdown

def test_clean_shutdown_drops_clients_and_stops_accepting(world, oracle):
    graph, _ = world
    (faults, pairs, truth), = workload(graph, num_sets=1, num_pairs=5)

    async def scenario():
        server = await _start(oracle)
        host, port = server.host, server.port
        client = await AsyncQueryClient.connect(host, port)
        assert (await client.connected_many(pairs, faults)) == truth
        await server.close()
        # The open connection is gone: the next request fails.
        with pytest.raises((ConnectionError, ServerError, Exception)):
            await asyncio.wait_for(client.ping(), timeout=5)
        # And nobody is listening anymore.
        with pytest.raises(OSError):
            await asyncio.wait_for(asyncio.open_connection(host, port), timeout=5)
        await client.close()

    asyncio.run(scenario())


# -------------------------------------------------- blocking client/harness

def test_blocking_client_and_background_server(world, oracle):
    """The synchronous surface: BackgroundServer + QueryClient, many threads."""
    graph, data = world
    reference = load_snapshot(data)
    batches = workload(graph, num_sets=2, num_pairs=8, seed=3)
    errors = []

    def hammer(batch_index):
        faults, pairs, truth = batches[batch_index % len(batches)]
        try:
            with QueryClient(server.host, server.port) as client:
                for _ in range(5):
                    assert client.connected_many(pairs, faults) == truth
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    with BackgroundServer(oracle, max_sessions=8) as server:
        with QueryClient(server.host, server.port) as client:
            assert client.ping()["pong"] is True
            faults, pairs, truth = batches[0]
            assert client.connected_many(pairs, faults) == \
                reference.connected_many(pairs, faults) == truth
        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        sessions = server.metrics.snapshot()["sessions"]
        assert sessions["misses"] == len(batches)
        assert sessions["hit_rate"] > 0.5
    # After shutdown the port no longer accepts.
    with pytest.raises(OSError):
        QueryClient(server.host, server.port, timeout=2)


# -------------------------------------------------------- session manager

def test_session_manager_rejects_bad_max_sessions(oracle):
    with pytest.raises(ValueError):
        SessionManager(oracle, max_sessions=0)


def test_session_manager_single_flight_counts(world, oracle):
    """Direct (serverless) check of the single-flight dedup."""
    graph, _ = world
    (faults, pairs, truth), = workload(graph, num_sets=1, num_pairs=4, seed=8)

    async def scenario():
        manager = SessionManager(oracle, max_sessions=4)
        try:
            results = await asyncio.gather(
                *[manager.connected_many(pairs, faults) for _ in range(6)])
            assert all(result == truth for result in results)
            stats = manager.stats()
            assert stats["sessions"]["misses"] == 1
            assert stats["sessions"]["hits"] + stats["sessions"]["coalesced"] == 5
            assert stats["inflight_builds"] == 0
            session = await manager.session(faults)
            assert session is oracle.batch_session(faults)
        finally:
            manager.close()

    asyncio.run(scenario())


def test_session_hot_key_accounting(world, oracle):
    """Per-fault-set traffic shows up as a ranked session_hot_keys family."""
    graph, _ = world
    sets = workload(graph, num_sets=3, num_pairs=2, seed=9)

    async def scenario():
        manager = SessionManager(oracle, max_sessions=4)
        try:
            # Skew the traffic: set 0 gets 5 lookups, set 1 gets 2, set 2 gets 1.
            for (faults, pairs, _), repeats in zip(sets, (5, 2, 1)):
                for _ in range(repeats):
                    await manager.connected_many(pairs, faults)
            hot = manager.stats()["session_hot_keys_by_key"]
            assert list(hot.values()) == sorted(hot.values(), reverse=True)
            assert max(hot.values()) == 5 and sum(hot.values()) == 8
            hottest = next(iter(hot))
            rendered = sorted({"%s-%s" % edge for edge in sets[0][0]})
            assert hottest == ",".join(rendered)
            # Permutations and duplicate restatements share one hot key.
            await manager.connected_many(sets[0][1],
                                         list(reversed(sets[0][0])) + sets[0][0][:1])
            assert manager.stats()["session_hot_keys_by_key"][hottest] == 6
            assert manager.stats()["session_hot_keys_tracked"] == 3
        finally:
            manager.close()

    asyncio.run(scenario())


def test_hot_keys_render_in_prometheus_exposition(world, oracle):
    """The server's stats reach to_prometheus() as one labeled family."""
    graph, _ = world
    (faults, pairs, _), = workload(graph, num_sets=1, num_pairs=2, seed=10)

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        for _ in range(3):
            await client.connected_many(pairs, faults)
        stats = await client.stats()
        await client.close()
        await server.close()
        return stats

    stats = asyncio.run(scenario())
    assert stats["server"]["session_hot_keys_by_key"], stats["server"]
    from repro.api import OracleStats

    text = OracleStats(
        transport="tcp", max_faults=MAX_FAULTS,
        extra={"server": stats["server"]}).to_prometheus()
    rendered = sorted({"%s-%s" % edge for edge in faults})
    assert 'repro_server_session_hot_keys{key="%s"} 3' % ",".join(rendered) in text


def test_hot_key_table_is_bounded(oracle):
    """Novel keys stop being admitted once the tracking table is full."""
    manager = SessionManager(oracle, max_sessions=4)
    try:
        manager.HOT_KEY_TRACK_LIMIT = 2
        manager._record_hot_key(("a",), [("u", "v")])
        manager._record_hot_key(("b",), [("w", "x")])
        manager._record_hot_key(("c",), [("y", "z")])  # not admitted
        manager._record_hot_key(("a",), [("u", "v")])  # still counted
        assert manager.hot_keys() == {"u-v": 2, "w-x": 1}
    finally:
        manager.close()


def test_hot_key_name_collisions_get_stable_suffixes(oracle):
    """A Prometheus series must never switch fault sets when ranks change."""
    manager = SessionManager(oracle, max_sessions=4)
    try:
        manager._hot_keys[("a",)] = 3
        manager._hot_key_names[("a",)] = "r"
        manager._hot_keys[("b",)] = 5
        manager._hot_key_names[("b",)] = "r"
        first = manager.hot_keys()
        assert set(first.values()) == {3, 5}
        assert all(name.startswith("r#") for name in first)
        name_of_a = next(name for name, count in first.items() if count == 3)
        manager._hot_keys[("a",)] = 9  # ranks swap; names must not
        second = manager.hot_keys()
        assert set(second) == set(first)
        assert second[name_of_a] == 9
    finally:
        manager.close()


def test_hot_key_and_metrics_counters_survive_thread_hammer(oracle):
    """The RPL004-registered state keeps exact counts under thread pressure.

    Every mutation of ``SessionManager._hot_keys`` / ``_hot_key_names`` and of
    the ``ServerMetrics`` counters is lock-guarded (the invariant linter's
    lock-discipline rule checks this lexically); this test checks it
    dynamically — with GIL-release pressure from many threads, totals must
    come out exact, not merely close.
    """
    from repro.server.metrics import ServerMetrics

    manager = SessionManager(oracle, max_sessions=4)
    metrics = ServerMetrics()
    rounds, workers = 200, 8
    keys = [(("k", worker % 3),) for worker in range(workers)]
    stats_snapshots = []

    def hammer(worker):
        key = keys[worker]
        for _ in range(rounds):
            manager._record_hot_key(key, [("u", str(worker % 3))])
            metrics.record_request("connected_many", 0.0)
            metrics.record_session_hit()
            metrics.add_queries(2)
        # Interleave reads: stats() takes the same locks the writers hold.
        stats_snapshots.append(manager.stats()["session_hot_keys_tracked"])
        stats_snapshots.append(metrics.snapshot()["requests_total"])

    try:
        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hot = manager.hot_keys()
        assert sum(hot.values()) == rounds * workers
        assert manager.stats()["session_hot_keys_tracked"] == 3
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == rounds * workers
        assert snapshot["sessions"]["hits"] == rounds * workers
        assert snapshot["queries_answered"] == 2 * rounds * workers
        assert len(stats_snapshots) == 2 * workers
    finally:
        manager.close()


# ----------------------------------------------------------- observability

def test_connection_close_accounting_never_goes_negative():
    """Regression: a double close (idempotent client teardown racing the
    server's own cleanup) must clamp ``connections_active`` at zero."""
    from repro.server.metrics import ServerMetrics

    metrics = ServerMetrics()
    metrics.connection_opened()
    metrics.connection_closed()
    metrics.connection_closed()  # the spurious second close
    assert metrics.snapshot()["connections_active"] == 0
    metrics.connection_opened()
    assert metrics.snapshot()["connections_active"] == 1


def test_stats_report_latency_quantiles(world, oracle):
    """Every op's latency entry carries ordered histogram quantiles."""
    graph, _ = world
    (faults, pairs, _), = workload(graph, num_sets=1, num_pairs=5, seed=31)

    async def scenario():
        server = await _start(oracle)
        client = await AsyncQueryClient.connect(server.host, server.port)
        for _ in range(5):
            await client.connected_many(pairs, faults)
        stats = await client.stats()
        await client.close()
        await server.close()
        return stats

    stats = asyncio.run(scenario())
    entry = stats["server"]["latency_by_op"]["connected_many"]
    assert entry["count"] == 5
    assert 0.0 <= entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    # Quantiles are interpolated within log-spaced buckets: bounded above by
    # the exact maximum padded by one bucket factor (2x), not by wishes.
    assert entry["p99_ms"] <= max(entry["max_ms"], 0.1) * 2.0
    assert entry["mean_ms"] <= entry["max_ms"]


def test_trace_id_round_trips_through_server_spans(world, oracle):
    """A client-supplied trace id is echoed in the envelope and stamps the
    server's dispatch *and* session-build spans (contextvar propagation)."""
    graph, _ = world
    (faults, pairs, _), = workload(graph, num_sets=1, num_pairs=3, seed=41)
    from repro.obs import Tracer

    events = []
    tracer = Tracer(service="repro.server", sink=events.append)

    async def scenario():
        server = await _start(oracle, tracer=tracer)
        client = await AsyncQueryClient.connect(server.host, server.port,
                                                trace_id="trace-under-test")
        answers = await client.connected_many(pairs, faults)
        assert client.last_trace == "trace-under-test"
        await client.close()
        await server.close()
        return answers

    asyncio.run(scenario())
    spans = {event["name"]: event for event in events}
    assert spans["server.connected_many"]["trace_id"] == "trace-under-test"
    assert spans["session.build"]["trace_id"] == "trace-under-test"
    # The build span is a child within the same trace, not a new root.
    assert spans["session.build"]["parent_id"] == \
        spans["server.connected_many"]["span_id"]


def test_untraced_envelopes_carry_no_trace_key(oracle):
    """No trace in, no trace out: untagged clients see byte-identical
    envelopes to the pre-tracing protocol."""

    async def scenario():
        server = await _start(oracle)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(b'{"op": "ping", "id": 1}\n')
        await writer.drain()
        plain = await reader.readline()
        writer.write(b'{"op": "ping", "id": 1, "trace": "abc"}\n')
        await writer.drain()
        traced = await reader.readline()
        writer.close()
        await writer.wait_closed()
        await server.close()
        return plain, traced

    plain, traced = asyncio.run(scenario())
    assert b"trace" not in plain
    assert json.loads(traced)["trace"] == "abc"
    # Everything else in the envelope is unchanged by the tag.
    assert {k: v for k, v in json.loads(traced).items() if k != "trace"} == \
        json.loads(plain)


def test_invalid_trace_field_is_bad_request(oracle):
    async def scenario():
        server = await _start(oracle)
        reader, writer = await asyncio.open_connection(server.host, server.port)
        for bad in (b'{"op": "ping", "trace": 7}',
                    b'{"op": "ping", "trace": ""}',
                    b'{"op": "ping", "trace": "%s"}' % (b"x" * 129)):
            writer.write(bad + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.E_BAD_REQUEST
        writer.close()
        await writer.wait_closed()
        await server.close()

    asyncio.run(scenario())


def test_answers_bit_identical_with_tracing_on_and_off(world, oracle):
    """The acceptance bar: tracing must never perturb query answers."""
    from repro.obs import Tracer

    graph, _ = world
    scenarios = workload(graph, num_sets=3, num_pairs=10, seed=51)

    async def run_with(tracer):
        server = await _start(oracle, tracer=tracer)
        client = await AsyncQueryClient.connect(server.host, server.port,
                                                trace_id="bit-identity")
        answers = [await client.connected_many(pairs, faults)
                   for faults, pairs, _ in scenarios]
        await client.close()
        await server.close()
        return answers

    traced = asyncio.run(run_with(Tracer(sink=lambda event: None)))
    untraced = asyncio.run(run_with(Tracer(enabled=False)))
    truth = [t for _, _, t in scenarios]
    assert traced == untraced == truth


async def _http_get(host, port, target):
    """One raw HTTP/1.1 GET against the metrics sidecar."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(("GET %s HTTP/1.1\r\nHost: x\r\n\r\n" % target).encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line, _, header_block = head.partition(b"\r\n")
    status = int(status_line.split()[1])
    headers = {}
    for line in header_block.split(b"\r\n"):
        key, _, value = line.partition(b":")
        headers[key.decode().lower()] = value.decode().strip()
    return status, headers, body


def test_metrics_sidecar_serves_prometheus_and_health(world, oracle):
    """``--metrics-port``: /metrics exposes the registry's histogram
    families plus the flattened stats tree; /healthz reports readiness."""
    graph, _ = world
    (faults, pairs, _), = workload(graph, num_sets=1, num_pairs=3, seed=61)

    async def scenario():
        server = await _start(oracle, metrics_port=0)
        assert server.metrics_port is not None
        client = await AsyncQueryClient.connect(server.host, server.port)
        await client.connected_many(pairs, faults)
        await client.ping()
        status, headers, body = await _http_get(
            server.metrics_host, server.metrics_port, "/metrics")
        health = await _http_get(server.metrics_host, server.metrics_port,
                                 "/healthz")
        missing = await _http_get(server.metrics_host, server.metrics_port,
                                  "/nope")
        await client.close()
        await server.close()
        return status, headers, body.decode(), health, missing

    status, headers, text, health, missing = asyncio.run(scenario())
    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    lines = text.splitlines()
    assert "# TYPE repro_server_request_seconds histogram" in lines
    assert any(line.startswith('repro_server_request_seconds_bucket'
                               '{op="connected_many",le="') for line in lines)
    assert 'repro_server_request_seconds_count{op="connected_many"} 1' in lines
    assert 'repro_server_requests_total{op="ping"} 1' in lines
    # Numbers the registry does not own ride along as flattened gauges.
    assert any(line.startswith("repro_server_session_hot_keys{key=")
               for line in lines)
    assert "# TYPE repro_oracle_max_faults gauge" in lines
    # Families are disjoint: one # TYPE per family name.
    families = [line.split()[2] for line in lines if line.startswith("# TYPE")]
    assert len(families) == len(set(families))

    health_status, _, health_body = health
    assert health_status == 200
    payload = json.loads(health_body)
    assert payload["status"] == "ok"
    assert payload["oracle"]["max_faults"] == MAX_FAULTS
    assert missing[0] == 404


def test_metrics_sidecar_rejects_non_get(oracle):
    async def scenario():
        server = await _start(oracle, metrics_port=0)
        reader, writer = await asyncio.open_connection(
            server.metrics_host, server.metrics_port)
        writer.write(b"POST /metrics HTTP/1.1\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        await server.close()
        return raw

    raw = asyncio.run(scenario())
    assert raw.startswith(b"HTTP/1.1 405 ")


def test_healthz_degrades_to_503_after_close(oracle):
    """A server that stopped listening reports unavailable, not a hang."""

    async def scenario():
        server = await _start(oracle, metrics_port=0)
        ready, payload = server.health()
        assert ready and payload["status"] == "ok"
        await server.close()
        ready, payload = server.health()
        assert not ready and payload["status"] == "unavailable"

    asyncio.run(scenario())
