"""Tests for polynomial arithmetic over GF(2^w)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2 import GF2m, Gf2Poly


@pytest.fixture(scope="module")
def field():
    return GF2m(8)


def poly_from_ints(field, values):
    return Gf2Poly(field, values)


def test_zero_and_one(field):
    zero = Gf2Poly.zero(field)
    one = Gf2Poly.one(field)
    assert zero.is_zero()
    assert one.is_one()
    assert zero.degree == -1
    assert one.degree == 0


def test_addition_cancels(field):
    p = poly_from_ints(field, [1, 2, 3])
    assert (p + p).is_zero()


def test_multiplication_by_zero_and_one(field):
    p = poly_from_ints(field, [5, 7, 9])
    assert (p * Gf2Poly.zero(field)).is_zero()
    assert p * Gf2Poly.one(field) == p


def test_known_product(field):
    # (x + 1)(x + 1) = x^2 + 1 in characteristic two.
    p = poly_from_ints(field, [1, 1])
    assert p * p == poly_from_ints(field, [1, 0, 1])


def test_divmod_roundtrip(field):
    dividend = poly_from_ints(field, [3, 1, 4, 1, 5, 9, 2, 6])
    divisor = poly_from_ints(field, [2, 7, 1])
    quotient, remainder = dividend.divmod(divisor)
    assert remainder.degree < divisor.degree
    assert quotient * divisor + remainder == dividend


def test_division_by_zero_raises(field):
    with pytest.raises(ZeroDivisionError):
        poly_from_ints(field, [1, 2]).divmod(Gf2Poly.zero(field))


def test_gcd_of_products(field):
    a = Gf2Poly.from_roots(field, [3, 5])
    b = Gf2Poly.from_roots(field, [5, 7])
    gcd = a.gcd(b)
    assert gcd == Gf2Poly.from_roots(field, [5]).monic()


def test_from_roots_evaluates_to_zero(field):
    roots = [2, 9, 77, 200]
    poly = Gf2Poly.from_roots(field, roots)
    for root in roots:
        assert poly.evaluate(root) == 0
    assert poly.evaluate(1) != 0


def test_evaluate_horner_matches_naive(field):
    coeffs = [7, 0, 13, 5]
    poly = poly_from_ints(field, coeffs)
    point = 29
    expected = 0
    for exponent, coefficient in enumerate(coeffs):
        expected ^= field.mul(coefficient, field.pow(point, exponent))
    assert poly.evaluate(point) == expected


def test_pow_mod(field):
    modulus = Gf2Poly.from_roots(field, [1, 2, 3])
    base = Gf2Poly.x(field)
    direct = base
    for _ in range(9):
        direct = (direct * base) % modulus
    assert base.pow_mod(10, modulus) == direct


def test_derivative_characteristic_two(field):
    # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in char 2.
    poly = poly_from_ints(field, [1, 1, 1, 1])
    assert poly.derivative() == poly_from_ints(field, [1, 0, 1])


def test_monic(field):
    poly = poly_from_ints(field, [4, 6, 8])
    monic = poly.monic()
    assert monic.leading_coefficient() == 1
    assert monic.scale(8) == poly


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6),
       st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6))
def test_multiplication_commutes(coeffs_a, coeffs_b):
    field = GF2m(8)
    a = Gf2Poly(field, coeffs_a)
    b = Gf2Poly(field, coeffs_b)
    assert a * b == b * a


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=8),
       st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=4))
def test_divmod_property(dividend_coeffs, divisor_coeffs):
    field = GF2m(8)
    dividend = Gf2Poly(field, dividend_coeffs)
    divisor = Gf2Poly(field, divisor_coeffs)
    if divisor.is_zero():
        return
    quotient, remainder = dividend.divmod(divisor)
    assert quotient * divisor + remainder == dividend
    assert remainder.degree < divisor.degree
