"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_edge_list, main, parse_fault


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "network.txt"
    path.write_text(
        "# a small ring with a chord\n"
        "a b\n"
        "b c\n"
        "c d\n"
        "d a\n"
        "b d\n"
        "\n")
    return path


def test_load_edge_list(edge_file):
    graph = load_edge_list(edge_file)
    assert graph.num_vertices() == 4
    assert graph.num_edges() == 5


def test_load_edge_list_rejects_bad_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a\n")
    with pytest.raises(ValueError):
        load_edge_list(path)


def test_parse_fault():
    assert parse_fault("a-b") == ("a", "b")
    assert parse_fault("a, b") == ("a", "b")
    with pytest.raises(ValueError):
        parse_fault("ab")


def test_cli_stats(edge_file, capsys):
    exit_code = main(["stats", "--edges", str(edge_file), "--max-faults", "2"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n"] == 4
    assert payload["max_edge_label_bits"] > 0


def test_cli_query_connected(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "2",
                      "--source", "a", "--target", "c",
                      "--fault", "b-c", "--fault", "c-d"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1 or payload["connected"] == payload["ground_truth"]
    assert payload["connected"] is False  # c is cut off from a


def test_cli_query_unknown_fault(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "1",
                      "--source", "a", "--target", "c", "--fault", "a-z"])
    assert exit_code == 2


def test_cli_audit(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "2",
                      "--queries", "25"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 25
    assert payload["wrong"] == 0


def test_cli_audit_sketch_variant(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "1",
                      "--variant", "sketch-full", "--queries", "10"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 10
    assert exit_code in (0, 1)
