"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_edge_list, main, parse_fault


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "network.txt"
    path.write_text(
        "# a small ring with a chord\n"
        "a b\n"
        "b c\n"
        "c d\n"
        "d a\n"
        "b d\n"
        "\n")
    return path


def test_load_edge_list(edge_file):
    graph = load_edge_list(edge_file)
    assert graph.num_vertices() == 4
    assert graph.num_edges() == 5


def test_load_edge_list_rejects_bad_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a\n")
    with pytest.raises(ValueError):
        load_edge_list(path)


def test_parse_fault():
    assert parse_fault("a-b") == ("a", "b")
    assert parse_fault("a, b") == ("a", "b")
    with pytest.raises(ValueError):
        parse_fault("ab")


def test_cli_stats(edge_file, capsys):
    exit_code = main(["stats", "--edges", str(edge_file), "--max-faults", "2"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n"] == 4
    assert payload["max_edge_label_bits"] > 0


def test_cli_query_connected(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "2",
                      "--source", "a", "--target", "c",
                      "--fault", "b-c", "--fault", "c-d"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1 or payload["connected"] == payload["ground_truth"]
    assert payload["connected"] is False  # c is cut off from a


def test_cli_query_unknown_fault(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "1",
                      "--source", "a", "--target", "c", "--fault", "a-z"])
    assert exit_code == 2


def test_cli_audit(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "2",
                      "--queries", "25"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 25
    assert payload["wrong"] == 0


def test_cli_batch_query(edge_file, capsys, tmp_path):
    pairs_file = tmp_path / "pairs.txt"
    pairs_file.write_text("# pairs\na c\nb d\n")
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "2",
                      "--fault", "b-c", "--fault", "c-d",
                      "--pair", "a-c", "--pairs-file", str(pairs_file),
                      "--random-pairs", "2", "--check"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["num_pairs"] == 5
    assert payload["ground_truth_mismatches"] == 0
    assert payload["batched"] is True
    assert payload["num_fragments"] >= 1
    assert payload["results"][0] == {"source": "a", "target": "c", "connected": False}


def test_cli_batch_query_requires_pairs(edge_file, capsys):
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "1"])
    assert exit_code == 2


def test_cli_batch_query_unknown_vertex(edge_file, capsys):
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "1",
                      "--pair", "a-z"])
    assert exit_code == 2


def test_cli_export_labels(edge_file, capsys, tmp_path):
    from repro.core.labels import EdgeLabel, VertexLabel

    output = tmp_path / "labels.json"
    exit_code = main(["export-labels", "--edges", str(edge_file), "--max-faults", "2",
                      "--output", str(output)])
    assert exit_code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["vertex_labels"] == 4
    assert summary["edge_labels"] == 5
    payload = json.loads(output.read_text())
    for blob in payload["vertex_labels"].values():
        VertexLabel.from_bytes(bytes.fromhex(blob))
    for entry in payload["edge_labels"]:
        assert {"u", "v", "label"} <= set(entry)
        EdgeLabel.from_bytes(bytes.fromhex(entry["label"]))


def test_cli_audit_sketch_variant(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "1",
                      "--variant", "sketch-full", "--queries", "10"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 10
    assert exit_code in (0, 1)
