"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_edge_list, main, parse_fault


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "network.txt"
    path.write_text(
        "# a small ring with a chord\n"
        "a b\n"
        "b c\n"
        "c d\n"
        "d a\n"
        "b d\n"
        "\n")
    return path


def test_load_edge_list(edge_file):
    graph = load_edge_list(edge_file)
    assert graph.num_vertices() == 4
    assert graph.num_edges() == 5


def test_load_edge_list_rejects_bad_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a\n")
    with pytest.raises(ValueError):
        load_edge_list(path)


def test_parse_fault():
    assert parse_fault("a-b") == ("a", "b")
    assert parse_fault("a, b") == ("a", "b")
    with pytest.raises(ValueError):
        parse_fault("ab")


def test_cli_stats(edge_file, capsys):
    exit_code = main(["stats", "--edges", str(edge_file), "--max-faults", "2"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n"] == 4
    assert payload["max_edge_label_bits"] > 0


def test_cli_query_connected(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "2",
                      "--source", "a", "--target", "c",
                      "--fault", "b-c", "--fault", "c-d"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1 or payload["connected"] == payload["ground_truth"]
    assert payload["connected"] is False  # c is cut off from a


def test_cli_query_unknown_fault(edge_file, capsys):
    exit_code = main(["query", "--edges", str(edge_file), "--max-faults", "1",
                      "--source", "a", "--target", "c", "--fault", "a-z"])
    assert exit_code == 2


def test_cli_audit(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "2",
                      "--queries", "25"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 25
    assert payload["wrong"] == 0


def test_cli_batch_query(edge_file, capsys, tmp_path):
    pairs_file = tmp_path / "pairs.txt"
    pairs_file.write_text("# pairs\na c\nb d\n")
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "2",
                      "--fault", "b-c", "--fault", "c-d",
                      "--pair", "a-c", "--pairs-file", str(pairs_file),
                      "--random-pairs", "2", "--check"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["num_pairs"] == 5
    assert payload["ground_truth_mismatches"] == 0
    assert payload["batched"] is True
    assert payload["num_fragments"] >= 1
    assert payload["results"][0] == {"source": "a", "target": "c", "connected": False}


def test_cli_batch_query_faults_file(edge_file, capsys, tmp_path):
    """--faults-file answers the pair list under every fault set via
    executor-backed session construction (--jobs)."""
    faults_file = tmp_path / "faults.txt"
    faults_file.write_text("# one fault set per line\nb-c c-d\na-b\n-\n")
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "2",
                      "--faults-file", str(faults_file), "--jobs", "2",
                      "--pair", "a-c", "--pair", "b-d", "--check"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["num_fault_sets"] == 3
    assert payload["session_jobs"] == 2
    assert payload["ground_truth_mismatches"] == 0
    assert [entry["faults"] for entry in payload["batches"]] == \
        [["b-c", "c-d"], ["a-b"], []]
    assert payload["batches"][0]["results"][0] == \
        {"source": "a", "target": "c", "connected": False}
    assert all(result["connected"] for result in payload["batches"][2]["results"])


def test_cli_batch_query_faults_file_conflicts_and_bad_lines(edge_file, capsys,
                                                             tmp_path):
    faults_file = tmp_path / "faults.txt"
    faults_file.write_text("a-b\n")
    assert main(["batch-query", "--edges", str(edge_file), "--max-faults", "1",
                 "--faults-file", str(faults_file), "--fault", "a-b",
                 "--pair", "a-c"]) == 2
    faults_file.write_text("nonsense\n")
    assert main(["batch-query", "--edges", str(edge_file), "--max-faults", "1",
                 "--faults-file", str(faults_file), "--pair", "a-c"]) == 2
    faults_file.write_text("# only comments\n")
    assert main(["batch-query", "--edges", str(edge_file), "--max-faults", "1",
                 "--faults-file", str(faults_file), "--pair", "a-c"]) == 2


def test_cli_batch_query_requires_pairs(edge_file, capsys):
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "1"])
    assert exit_code == 2


def test_cli_batch_query_unknown_vertex(edge_file, capsys):
    exit_code = main(["batch-query", "--edges", str(edge_file), "--max-faults", "1",
                      "--pair", "a-z"])
    assert exit_code == 2


def test_cli_export_labels(edge_file, capsys, tmp_path):
    from repro.core.labels import EdgeLabel, VertexLabel

    output = tmp_path / "labels.json"
    exit_code = main(["export-labels", "--edges", str(edge_file), "--max-faults", "2",
                      "--output", str(output)])
    assert exit_code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["vertex_labels"] == 4
    assert summary["edge_labels"] == 5
    payload = json.loads(output.read_text())
    for blob in payload["vertex_labels"].values():
        VertexLabel.from_bytes(bytes.fromhex(blob))
    for entry in payload["edge_labels"]:
        assert {"u", "v", "label"} <= set(entry)
        EdgeLabel.from_bytes(bytes.fromhex(entry["label"]))


def test_cli_audit_sketch_variant(edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "1",
                      "--variant", "sketch-full", "--queries", "10"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 10
    assert exit_code in (0, 1)


# ---------------------------------------------------------------- snapshots


@pytest.fixture
def snapshot_file(edge_file, tmp_path, capsys):
    path = tmp_path / "network.ftcs"
    assert main(["save-labeling", "--edges", str(edge_file), "--max-faults", "2",
                 "--output", str(path)]) == 0
    capsys.readouterr()  # drop the save summary
    return path


def test_cli_save_and_load_labeling(edge_file, tmp_path, capsys):
    path = tmp_path / "network.ftcs"
    exit_code = main(["save-labeling", "--edges", str(edge_file), "--max-faults", "2",
                      "--output", str(path)])
    assert exit_code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["vertex_labels"] == 4
    assert summary["edge_labels"] == 5
    assert path.stat().st_size == summary["bytes"]

    exit_code = main(["load-labeling", "--snapshot", str(path)])
    assert exit_code == 0
    loaded = json.loads(capsys.readouterr().out)
    assert loaded["format"] == "ftc-snapshot"
    assert loaded["max_faults"] == 2
    assert loaded["vertex_labels"] == 4
    assert loaded["outdetect_kind"] == "layered-rs"


def test_cli_batch_query_from_snapshot(snapshot_file, capsys):
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--fault", "b-c", "--fault", "c-d",
                      "--pair", "a-c", "--pair", "b-d"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["labels"] == "snapshot"
    assert payload["batched"] is True
    assert payload["results"][0] == {"source": "a", "target": "c", "connected": False}
    assert payload["results"][1] == {"source": "b", "target": "d", "connected": True}


def test_cli_batch_query_snapshot_with_check(snapshot_file, edge_file, capsys):
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--edges", str(edge_file), "--fault", "b-c",
                      "--random-pairs", "4", "--check"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ground_truth_mismatches"] == 0


def test_cli_batch_query_snapshot_check_requires_edges(snapshot_file, capsys):
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--pair", "a-c", "--check"])
    assert exit_code == 2


def test_cli_batch_query_requires_edges_or_snapshot(capsys):
    exit_code = main(["batch-query", "--pair", "a-c"])
    assert exit_code == 2


def test_cli_batch_query_snapshot_unknown_fault(snapshot_file, capsys):
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--fault", "a-z", "--pair", "a-c"])
    assert exit_code == 2


def test_cli_batch_query_snapshot_graph_mismatch(snapshot_file, tmp_path, capsys):
    """A graph that outgrew the snapshot is reported, not a KeyError crash."""
    bigger = tmp_path / "bigger.txt"
    bigger.write_text("a b\nb c\nc d\nd a\nb d\nd e\n")  # vertex e, edge d-e are new
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--edges", str(bigger), "--fault", "d-e",
                      "--pair", "a-c", "--check"])
    assert exit_code == 2
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--edges", str(bigger), "--pair", "a-e", "--check"])
    assert exit_code == 2


def test_cli_corrupt_snapshot_reports_cleanly(tmp_path, capsys):
    bad = tmp_path / "corrupt.ftcs"
    bad.write_bytes(b"FTCS\x01garbage")
    assert main(["load-labeling", "--snapshot", str(bad)]) == 2
    assert main(["batch-query", "--snapshot", str(bad), "--pair", "a-c"]) == 2
    assert main(["load-labeling", "--snapshot", str(tmp_path / "missing.ftcs")]) == 2


def test_cli_corrupt_label_payload_reports_cleanly(snapshot_file, tmp_path, capsys):
    """A snapshot whose container parses but whose label blob is corrupt must
    exit 2 with a message, not crash at first lazy decode."""
    from repro.core.snapshot import FTCSnapshot

    lazy = FTCSnapshot.from_bytes(snapshot_file.read_bytes(), decode_labels=False)
    vertex = next(iter(lazy.vertex_labels))
    blob = lazy.vertex_labels[vertex]
    lazy.vertex_labels[vertex] = blob[:-1] + b"\x80"  # same length, truncated varint
    poisoned = tmp_path / "poisoned.ftcs"
    poisoned.write_bytes(lazy.to_bytes())
    exit_code = main(["batch-query", "--snapshot", str(poisoned),
                      "--pair", "%s-%s" % (vertex, "c" if vertex != "c" else "d")])
    assert exit_code == 2
    assert "corrupt" in capsys.readouterr().err


def test_cli_batch_query_over_budget_faults_report_cleanly(snapshot_file, capsys):
    exit_code = main(["batch-query", "--snapshot", str(snapshot_file),
                      "--fault", "a-b", "--fault", "b-c", "--fault", "c-d",
                      "--pair", "a-c"])
    assert exit_code == 2
    assert "faults" in capsys.readouterr().err


def test_cli_audit_snapshot_notes_overridden_budget(snapshot_file, edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file), "--max-faults", "1",
                      "--snapshot", str(snapshot_file), "--queries", "10"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "does not apply in snapshot mode" in captured.err
    assert json.loads(captured.out)["total"] == 10


def test_cli_audit_snapshot_graph_mismatch(snapshot_file, tmp_path, capsys):
    bigger = tmp_path / "bigger.txt"
    bigger.write_text("a b\nb c\nc d\nd a\nb d\nd e\n")
    exit_code = main(["audit", "--edges", str(bigger),
                      "--snapshot", str(snapshot_file), "--queries", "10"])
    assert exit_code == 2
    assert "stale" in capsys.readouterr().err


def test_cli_audit_from_snapshot(snapshot_file, edge_file, capsys):
    exit_code = main(["audit", "--edges", str(edge_file),
                      "--snapshot", str(snapshot_file), "--queries", "25"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 25
    assert payload["wrong"] == 0
    assert payload["labels"] == "snapshot"


# ------------------------------------------------------- --json output mode


def test_cli_stats_json_envelope(edge_file, capsys):
    assert main(["stats", "--edges", str(edge_file), "--max-faults", "2",
                 "--json"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) == 1  # one compact line
    envelope = json.loads(out)
    assert envelope["ok"] is True
    assert envelope["result"]["n"] == 4


def test_cli_query_json_envelope(edge_file, capsys):
    assert main(["query", "--edges", str(edge_file), "--max-faults", "2",
                 "--source", "a", "--target", "c", "--fault", "b-c",
                 "--json"]) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is True
    assert envelope["result"]["connected"] is True


def test_cli_batch_query_json_matches_plain_output(edge_file, capsys):
    arguments = ["batch-query", "--edges", str(edge_file), "--max-faults", "2",
                 "--fault", "b-c", "--pair", "a-c", "--pair", "b-d"]
    assert main(arguments) == 0
    plain = json.loads(capsys.readouterr().out)
    assert main(arguments + ["--json"]) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is True
    assert envelope["result"] == plain


# ------------------------------------------------------ serve / client-query


@pytest.fixture
def running_server(snapshot_file):
    from repro.core.snapshot import load_snapshot
    from repro.server import BackgroundServer

    with BackgroundServer(load_snapshot(snapshot_file), max_sessions=4) as server:
        yield server


def test_cli_client_query_matches_batch_query(running_server, snapshot_file, capsys):
    """Acceptance: the wire path and the in-process path print one format."""
    query = ["--fault", "b-c", "--fault", "c-d", "--pair", "a-c", "--pair", "b-d"]
    assert main(["client-query", "--host", running_server.host,
                 "--port", str(running_server.port), "--json"] + query) == 0
    remote = json.loads(capsys.readouterr().out)
    assert main(["batch-query", "--snapshot", str(snapshot_file), "--json"] + query) == 0
    local = json.loads(capsys.readouterr().out)
    assert remote["ok"] is True and local["ok"] is True
    assert remote["result"]["results"] == local["result"]["results"]
    assert remote["result"]["results"][0] == {"source": "a", "target": "c",
                                              "connected": False}


def test_cli_client_query_pairs_file_ping_and_stats(running_server, tmp_path, capsys):
    pairs_file = tmp_path / "pairs.txt"
    pairs_file.write_text("# pairs\na c\nb d\n")
    address = ["--host", running_server.host, "--port", str(running_server.port)]
    assert main(["client-query"] + address + ["--pairs-file", str(pairs_file)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["num_pairs"] == 2
    assert main(["client-query"] + address + ["--op", "ping"]) == 0
    assert json.loads(capsys.readouterr().out)["pong"] is True
    assert main(["client-query"] + address + ["--op", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["result"]["server"]["requests_total"] >= 2


def test_cli_client_query_server_error_is_reported(running_server, capsys):
    address = ["--host", running_server.host, "--port", str(running_server.port)]
    assert main(["client-query"] + address + ["--fault", "a-z", "--pair", "a-c",
                                              "--json"]) == 2
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is False
    assert envelope["error"]["code"] == "unknown-edge"
    assert main(["client-query"] + address + ["--pair", "a-c", "--fault", "a-z"]) == 2
    assert "server refused" in capsys.readouterr().err


def test_cli_client_query_requires_pairs(running_server, capsys):
    assert main(["client-query", "--host", running_server.host,
                 "--port", str(running_server.port)]) == 2


def test_cli_client_query_bad_fault_syntax_reports_cleanly(running_server, capsys):
    """A malformed --fault exits 2 with a message, not a traceback."""
    assert main(["client-query", "--host", running_server.host,
                 "--port", str(running_server.port),
                 "--fault", "nodash", "--pair", "a-c"]) == 2
    assert "not of the form" in capsys.readouterr().err


def test_cli_batch_query_oracle_uri_selects_transport(running_server, snapshot_file,
                                                      capsys):
    """One --oracle flag switches batch-query between snapshot and tcp
    transports; the reports agree."""
    query = ["--fault", "b-c", "--pair", "a-c", "--pair", "b-d", "--json"]
    uri = "tcp://%s:%d" % (running_server.host, running_server.port)
    assert main(["batch-query", "--oracle", uri] + query) == 0
    remote = json.loads(capsys.readouterr().out)
    assert main(["batch-query", "--oracle", "snapshot:%s" % snapshot_file] + query) == 0
    local = json.loads(capsys.readouterr().out)
    assert remote["ok"] is True and local["ok"] is True
    assert remote["result"]["results"] == local["result"]["results"]
    assert remote["result"]["labels"] == "server"
    assert local["result"]["labels"] == "snapshot"
    # Both transports report the same decomposition structure.
    assert remote["result"]["num_components"] == local["result"]["num_components"]
    assert remote["result"]["num_fragments"] == local["result"]["num_fragments"]


def test_cli_batch_query_oracle_uri_pool_transport(snapshot_file, capsys):
    """batch-query --oracle pool:…?workers=N answers like the snapshot
    transport and reports the pool as its label source."""
    query = ["--fault", "b-c", "--pair", "a-c", "--pair", "b-d", "--json"]
    assert main(["batch-query", "--oracle",
                 "pool:%s?workers=2" % snapshot_file] + query) == 0
    pooled = json.loads(capsys.readouterr().out)
    assert main(["batch-query", "--oracle", "snapshot:%s" % snapshot_file]
                + query) == 0
    local = json.loads(capsys.readouterr().out)
    assert pooled["ok"] is True and local["ok"] is True
    assert pooled["result"]["results"] == local["result"]["results"]
    assert pooled["result"]["labels"] == "pool"
    assert pooled["result"]["num_components"] == local["result"]["num_components"]
    assert pooled["result"]["num_fragments"] == local["result"]["num_fragments"]
    # Pool-side membership failures exit 2 cleanly, not with a traceback.
    assert main(["batch-query", "--oracle", "pool:%s?workers=2" % snapshot_file,
                 "--fault", "a-z", "--pair", "a-c"]) == 2
    assert "error:" in capsys.readouterr().err
    # A missing artifact is a CLI error too.
    assert main(["batch-query", "--oracle", "pool:%s.missing" % snapshot_file,
                 "--pair", "a-c"]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_batch_query_oracle_uri_build_and_errors(edge_file, capsys):
    assert main(["batch-query", "--oracle", "build:%s" % edge_file,
                 "--max-faults", "2", "--fault", "b-c", "--pair", "a-c",
                 "--check"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["labels"] == "constructed"
    assert report["ground_truth_mismatches"] == 0
    assert main(["batch-query", "--oracle", "ftp://nope", "--pair", "a-c"]) == 2
    assert "unsupported oracle URI" in capsys.readouterr().err


def test_cli_oracle_uri_conflicting_flags_rejected(edge_file, snapshot_file, capsys):
    """--oracle must not silently override an explicit conflicting flag."""
    assert main(["batch-query", "--oracle", "snapshot:other.ftcs",
                 "--snapshot", str(snapshot_file), "--pair", "a-c"]) == 2
    assert "conflicts with --snapshot" in capsys.readouterr().err
    assert main(["batch-query", "--oracle", "build:other.txt",
                 "--edges", str(edge_file), "--pair", "a-c"]) == 2
    assert "conflicts with --edges" in capsys.readouterr().err


def test_cli_batch_query_remote_server_error(running_server, capsys):
    uri = "tcp://%s:%d" % (running_server.host, running_server.port)
    assert main(["batch-query", "--oracle", uri, "--fault", "a-z",
                 "--pair", "a-c", "--json"]) == 2
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is False
    assert envelope["error"]["code"] == "unknown-edge"


def test_cli_stats_oracle_uri_and_prometheus(running_server, snapshot_file, capsys):
    """stats --oracle prints the normalized OracleStats for any transport."""
    assert main(["stats", "--oracle", "snapshot:%s" % snapshot_file, "--json"]) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["result"]["transport"] == "snapshot"
    assert envelope["result"]["max_faults"] == 2
    uri = "tcp://%s:%d" % (running_server.host, running_server.port)
    assert main(["stats", "--oracle", uri, "--prometheus"]) == 0
    text = capsys.readouterr().out
    assert "repro_oracle_max_faults 2" in text
    assert 'repro_oracle_info{transport="tcp"' in text


def test_cli_client_query_prometheus(running_server, capsys):
    """client-query --prometheus exposes the server stats as text metrics."""
    address = ["--host", running_server.host, "--port", str(running_server.port)]
    assert main(["client-query"] + address + ["--pair", "a-c"]) == 0
    capsys.readouterr()
    assert main(["client-query"] + address + ["--prometheus"]) == 0
    text = capsys.readouterr().out
    assert "# TYPE repro_server_requests_total gauge" in text
    assert "repro_server_requests_total" in text
    assert 'repro_server_requests{op="connected_many"}' in text
    assert 'repro_oracle_info{transport="tcp"' in text


def test_cli_client_query_connection_refused(capsys):
    # An ephemeral port nobody is listening on.
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    assert main(["client-query", "--port", str(port), "--pair", "a-c"]) == 2
    assert "cannot connect" in capsys.readouterr().err
