"""Round-trip property tests for the label byte codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serialize
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core import FTCConfig, FTCLabeling, SchemeVariant
from repro.labeling.ancestry import AncestryLabel
from repro.workloads import GraphFamily, make_graph

# ---------------------------------------------------------------- primitives


@given(st.integers(min_value=0, max_value=1 << 512))
def test_varint_round_trip(value):
    out = bytearray()
    serialize.write_varint(value, out)
    decoded, offset = serialize.read_varint(bytes(out), 0)
    assert decoded == value
    assert offset == len(out)


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        serialize.write_varint(-1, bytearray())


label_trees = st.recursive(
    st.integers(min_value=0, max_value=1 << 200),
    lambda children: st.lists(children, max_size=5).map(tuple),
    max_leaves=25,
)


@given(label_trees)
@settings(max_examples=200)
def test_label_tree_round_trip(tree):
    out = bytearray()
    serialize.write_label_tree(tree, out)
    decoded, offset = serialize.read_label_tree(bytes(out), 0)
    assert decoded == tree
    assert offset == len(out)


def test_label_tree_rejects_foreign_types():
    with pytest.raises(TypeError):
        serialize.write_label_tree([1, 2], bytearray())


# -------------------------------------------------------------- label objects


@given(st.integers(min_value=0, max_value=1 << 40),
       st.integers(min_value=0, max_value=1 << 40))
def test_vertex_label_round_trip(pre, post):
    label = VertexLabel(ancestry=AncestryLabel(pre=pre, post=post))
    data = label.to_bytes()
    assert data.startswith(serialize.MAGIC)
    assert VertexLabel.from_bytes(data) == label


@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000),
       label_trees,
       st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=100)
def test_edge_label_round_trip(lower_pre, span, subtree_sum, bits):
    lower = AncestryLabel(pre=lower_pre + 1, post=lower_pre + 1 + span)
    upper = AncestryLabel(pre=lower_pre, post=lower_pre + 2 + span)
    label = EdgeLabel(ancestry_upper=upper, ancestry_lower=lower,
                      outdetect_subtree_sum=subtree_sum, outdetect_bits=bits)
    assert EdgeLabel.from_bytes(label.to_bytes()) == label


@pytest.mark.parametrize("variant", [SchemeVariant.DETERMINISTIC_NEARLINEAR,
                                     SchemeVariant.RANDOMIZED_FULL,
                                     SchemeVariant.SKETCH_WHP])
def test_scheme_labels_round_trip(variant):
    """Every label any scheme variant produces survives the byte round-trip."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=24, seed=6, density=1.6)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2, variant=variant))
    for vertex in graph.vertices():
        label = labeling.vertex_label(vertex)
        assert VertexLabel.from_bytes(label.to_bytes()) == label
    for edge in graph.edges():
        label = labeling.edge_label(*edge)
        restored = EdgeLabel.from_bytes(label.to_bytes())
        assert restored == label
        assert restored.bit_size() == label.bit_size()


def test_deserialized_labels_answer_queries():
    """Labels that went through bytes are as good as the originals."""
    graph = make_graph(GraphFamily.GRID, n=16, seed=2)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    decoder = labeling.decoder()
    vertices = sorted(graph.vertices())
    edges = sorted(graph.edges())
    faults = edges[:2]
    fault_labels = [EdgeLabel.from_bytes(labeling.edge_label(u, v).to_bytes())
                    for u, v in faults]
    for s, t in [(vertices[0], vertices[-1]), (vertices[1], vertices[-2])]:
        source = VertexLabel.from_bytes(labeling.vertex_label(s).to_bytes())
        target = VertexLabel.from_bytes(labeling.vertex_label(t).to_bytes())
        assert decoder.connected(source, target, fault_labels) == \
            graph.connected(s, t, removed=faults)


# ---------------------------------------------------------------- error paths


def test_varint_continuation_run_fails_closed():
    """A run of continuation bytes must raise, not build a giant integer."""
    # Truncated: every byte continues, the buffer just ends.
    with pytest.raises(serialize.LabelDecodeError):
        serialize.read_varint(b"\xff" * 64, 0)
    # Unterminated beyond the cap inside a larger buffer: the decoder must
    # stop at MAX_VARINT_BYTES instead of accumulating bits to the end.
    runaway = b"\xff" * (serialize.MAX_VARINT_BYTES + 64) + b"\x01"
    with pytest.raises(serialize.LabelDecodeError):
        serialize.read_varint(runaway, 0)


def test_varint_at_the_cap_still_decodes():
    value = (1 << (7 * serialize.MAX_VARINT_BYTES)) - 1  # exactly cap bytes
    out = bytearray()
    serialize.write_varint(value, out)
    assert len(out) == serialize.MAX_VARINT_BYTES
    decoded, offset = serialize.read_varint(bytes(out), 0)
    assert decoded == value and offset == len(out)


def test_label_tree_oversized_tuple_length_rejected():
    """A declared child count beyond the remaining buffer fails fast."""
    out = bytearray([0x01])                      # tuple tag
    serialize.write_varint(1 << 40, out)         # absurd declared length
    out += b"\x00\x01"                           # one real child
    with pytest.raises(serialize.LabelDecodeError):
        serialize.read_label_tree(bytes(out), 0)


def test_label_tree_deep_nesting_rejected_without_recursion_error():
    # 0x01 0x01 == "tuple of one child" repeated: nesting depth = repeat count.
    data = b"\x01\x01" * 300 + b"\x00\x00"
    with pytest.raises(serialize.LabelDecodeError):
        serialize.read_label_tree(data, 0)


def test_edge_label_fuzzed_mutations_fail_closed():
    """Random corruptions either decode to a label or raise LabelDecodeError —
    never hang, recurse, or allocate unboundedly."""
    import random

    label = EdgeLabel(ancestry_upper=AncestryLabel(pre=1, post=10),
                      ancestry_lower=AncestryLabel(pre=2, post=9),
                      outdetect_subtree_sum=((5, 1 << 90, 7), (0, 3)),
                      outdetect_bits=321)
    data = bytearray(label.to_bytes())
    rng = random.Random(1234)
    for _ in range(400):
        mutated = bytearray(data)
        for _ in range(rng.randint(1, 4)):
            position = rng.randrange(len(mutated))
            mutated[position] = rng.randrange(256)
        try:
            EdgeLabel.from_bytes(bytes(mutated))
        except serialize.LabelDecodeError:
            # Covers invariant violations too (upper must be an ancestor of
            # lower): structurally valid but absurd bytes are decode errors.
            pass


def test_truncated_label_prefixes_fail_closed():
    label = EdgeLabel(ancestry_upper=AncestryLabel(pre=0, post=20),
                      ancestry_lower=AncestryLabel(pre=3, post=12),
                      outdetect_subtree_sum=(1, 2, 3),
                      outdetect_bits=64)
    data = label.to_bytes()
    for cut in range(len(data)):
        with pytest.raises(serialize.LabelDecodeError):
            EdgeLabel.from_bytes(data[:cut])


def test_header_validation():
    label = VertexLabel(ancestry=AncestryLabel(pre=3, post=9))
    data = label.to_bytes()
    with pytest.raises(serialize.LabelDecodeError):
        VertexLabel.from_bytes(b"XXXX" + data[4:])          # bad magic
    bad_version = bytes([*data[:4], 99, *data[5:]])
    with pytest.raises(serialize.LabelDecodeError):
        VertexLabel.from_bytes(bad_version)                  # unknown version
    with pytest.raises(serialize.LabelDecodeError):
        EdgeLabel.from_bytes(data)                           # wrong kind
    with pytest.raises(serialize.LabelDecodeError):
        VertexLabel.from_bytes(data + b"\x00")               # trailing bytes
    with pytest.raises(serialize.LabelDecodeError):
        VertexLabel.from_bytes(data[:-1] + b"\x80")          # truncated varint
    with pytest.raises(serialize.LabelDecodeError):
        VertexLabel.from_bytes(b"FT")                        # too short
