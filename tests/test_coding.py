"""Tests for syndromes, Berlekamp-Massey, root finding, and sparse recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import (DecodeFailure, SparseRecoveryDecoder, SyndromeEncoder,
                          berlekamp_massey, find_roots, xor_vectors)
from repro.gf2 import GF2m, Gf2Poly


@pytest.fixture(scope="module")
def field():
    return GF2m(16)


@pytest.fixture(scope="module")
def big_field():
    return GF2m(40)


# --------------------------------------------------------------------- syndromes

def test_syndrome_length_and_zero(field):
    encoder = SyndromeEncoder(field, threshold=5)
    assert encoder.length == 10
    assert encoder.zero() == [0] * 10
    assert encoder.syndrome_of([]) == encoder.zero()


def test_encode_rejects_zero(field):
    encoder = SyndromeEncoder(field, threshold=3)
    with pytest.raises(ValueError):
        encoder.encode(0)


def test_encode_powers(field):
    encoder = SyndromeEncoder(field, threshold=3)
    row = encoder.encode(7)
    assert row == [field.pow(7, j) for j in range(1, 7)]


def test_syndrome_xor_cancellation(field):
    encoder = SyndromeEncoder(field, threshold=4)
    a = encoder.syndrome_of([3, 9, 12])
    b = encoder.syndrome_of([9])
    combined = xor_vectors(a, b)
    assert combined == encoder.syndrome_of([3, 12])


def test_xor_vectors_length_mismatch():
    with pytest.raises(ValueError):
        xor_vectors([1, 2], [1, 2, 3])


# ------------------------------------------------------------- Berlekamp-Massey

def test_berlekamp_massey_degree_matches_support(field):
    encoder = SyndromeEncoder(field, threshold=6)
    support = [2, 5, 17, 300]
    syndrome = encoder.syndrome_of(support)
    locator = berlekamp_massey(field, syndrome)
    assert locator.degree == len(support)
    # Lambda(z) = prod (1 - x z) vanishes at z = x^{-1}.
    for element in support:
        assert locator.evaluate(field.inv(element)) == 0


def test_berlekamp_massey_zero_sequence(field):
    locator = berlekamp_massey(field, [0] * 8)
    assert locator.degree == 0


# ------------------------------------------------------------------ root finding

def test_find_roots_known_polynomial(field):
    roots = [1, 2, 77, 4096]
    poly = Gf2Poly.from_roots(field, roots)
    assert find_roots(poly) == sorted(roots)


def test_find_roots_with_zero_root(field):
    roots = [0, 5, 9]
    poly = Gf2Poly.from_roots(field, roots)
    assert find_roots(poly) == sorted(roots)


def test_find_roots_irreducible_quadratic(field):
    # x^2 + x + c has no roots when Tr(c) = 1; construct one by brute force.
    for constant in range(1, field.order):
        candidate = Gf2Poly(field, [constant, 1, 1])
        has_root = any(candidate.evaluate(v) == 0 for v in range(0, 50))
        if field.trace(constant) == 1:
            assert find_roots(candidate) == []
            break
    else:  # pragma: no cover - there is always an element of trace 1
        pytest.fail("no trace-one constant found")


def test_find_roots_large_field(big_field):
    roots = [1, 123456789 % big_field.order, (1 << 35) + 7, 999999937 % big_field.order]
    poly = Gf2Poly.from_roots(big_field, roots)
    assert find_roots(poly) == sorted(set(roots))


def test_find_roots_zero_polynomial_raises(field):
    with pytest.raises(ValueError):
        find_roots(Gf2Poly.zero(field))


# --------------------------------------------------------------- sparse recovery

def test_decode_empty_support(field):
    decoder = SparseRecoveryDecoder(field, threshold=4)
    encoder = SyndromeEncoder(field, threshold=4)
    assert decoder.decode(encoder.zero()) == []


def test_decode_roundtrip_various_sizes(field):
    threshold = 6
    decoder = SparseRecoveryDecoder(field, threshold)
    encoder = SyndromeEncoder(field, threshold)
    supports = [[1], [2, 3], [10, 20, 30], [7, 77, 777, 7777], list(range(1, 7))]
    for support in supports:
        syndrome = encoder.syndrome_of(support)
        assert decoder.decode(syndrome) == sorted(support)


def test_decode_adaptive_matches_full(field):
    threshold = 8
    decoder = SparseRecoveryDecoder(field, threshold)
    encoder = SyndromeEncoder(field, threshold)
    support = [11, 222, 3333]
    syndrome = encoder.syndrome_of(support)
    assert decoder.decode_adaptive(syndrome) == sorted(support)


def test_decode_detects_overfull_support(field):
    threshold = 3
    decoder = SparseRecoveryDecoder(field, threshold)
    encoder = SyndromeEncoder(field, threshold)
    # 6 > threshold elements: the decoder must not silently return garbage.
    support = [2, 4, 8, 16, 32, 64]
    syndrome = encoder.syndrome_of(support)
    with pytest.raises(DecodeFailure):
        decoder.decode(syndrome)


def test_decode_rejects_wrong_length(field):
    decoder = SparseRecoveryDecoder(field, threshold=3)
    with pytest.raises(ValueError):
        decoder.decode([0] * 5)


def test_decode_large_field_roundtrip(big_field):
    threshold = 4
    decoder = SparseRecoveryDecoder(big_field, threshold)
    encoder = SyndromeEncoder(big_field, threshold)
    support = [5, (1 << 30) + 1, (1 << 39) + 123, 987654321]
    syndrome = encoder.syndrome_of(support)
    assert decoder.decode(syndrome) == sorted(support)
    assert decoder.decode_adaptive(syndrome) == sorted(support)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=1, max_value=(1 << 16) - 1), min_size=0, max_size=5))
def test_sparse_recovery_property(support):
    field = GF2m(16)
    threshold = 5
    decoder = SparseRecoveryDecoder(field, threshold)
    encoder = SyndromeEncoder(field, threshold)
    syndrome = encoder.syndrome_of(support)
    assert decoder.decode(syndrome) == sorted(support)


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(min_value=1, max_value=(1 << 16) - 1), min_size=1, max_size=5))
def test_adaptive_recovery_property(support):
    field = GF2m(16)
    decoder = SparseRecoveryDecoder(field, threshold=8)
    encoder = SyndromeEncoder(field, threshold=8)
    syndrome = encoder.syndrome_of(support)
    assert decoder.decode_adaptive(syndrome) == sorted(support)
