"""End-to-end tests of the f-FTC labeling schemes against BFS ground truth."""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (FTCConfig, FTCLabeling, FTConnectivityOracle, SchemeVariant)
from repro.graphs import Graph
from repro.hierarchy.config import ThresholdRule


def random_connected_graph(n, m, seed):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


def audit(labeling, graph, num_queries, max_faults, seed, use_fast_engine=True):
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    mismatches = []
    for _ in range(num_queries):
        fault_count = rng.randint(0, max_faults)
        faults = rng.sample(edges, min(fault_count, len(edges)))
        s, t = rng.sample(vertices, 2)
        expected = graph.connected(s, t, removed=faults)
        answer = labeling.connected(s, t, faults, use_fast_engine=use_fast_engine)
        if answer != expected:
            mismatches.append((s, t, faults, expected, answer))
    return mismatches


# ----------------------------------------------------------------- construction

def test_config_validation():
    with pytest.raises(ValueError):
        FTCConfig(max_faults=0)


def test_rejects_disconnected_graph():
    graph = Graph([(0, 1)], vertices=[0, 1, 2])
    with pytest.raises(ValueError):
        FTCLabeling(graph, FTCConfig(max_faults=1))


def test_rejects_query_with_too_many_faults():
    graph = random_connected_graph(10, 20, seed=1)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    edges = sorted(graph.edges())[:2]
    with pytest.raises(ValueError):
        labeling.connected(0, 1, edges)


def test_unknown_vertex_and_edge_raise():
    graph = random_connected_graph(10, 20, seed=2)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    with pytest.raises(KeyError):
        labeling.vertex_label(99)
    with pytest.raises(KeyError):
        labeling.edge_label(0, 99)


def test_label_size_stats_shape():
    graph = random_connected_graph(15, 35, seed=3)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    stats = labeling.label_size_stats()
    assert stats["n"] == 15
    assert stats["max_vertex_label_bits"] > 0
    assert stats["max_edge_label_bits"] >= stats["max_vertex_label_bits"]
    assert stats["hierarchy"]["depth"] >= 1
    assert stats["construction_seconds"] >= 0


def test_tree_input_has_trivial_hierarchy():
    nx_tree = nx.random_labeled_tree(12, seed=4)
    graph = Graph.from_networkx(nx_tree)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    # A tree has no non-tree edges; every fault genuinely disconnects.
    edges = sorted(graph.edges())
    for edge in edges[:5]:
        u, v = edge
        assert labeling.connected(u, v, [edge]) is False
        assert labeling.connected(u, v, []) is True


# ----------------------------------------------------------- exhaustive (small)

def test_exhaustive_small_graph_all_fault_pairs():
    """Full query support: every (s, t, F) with |F| <= 2 on a small graph."""
    graph = random_connected_graph(8, 14, seed=5)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    decoder = labeling.decoder()
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    fault_sets = [()] + [(e,) for e in edges] + list(itertools.combinations(edges, 2))
    for faults in fault_sets:
        fault_labels = [labeling.edge_label(u, v) for u, v in faults]
        for s, t in itertools.combinations(vertices, 2):
            expected = graph.connected(s, t, removed=faults)
            answer = decoder.connected(labeling.vertex_label(s), labeling.vertex_label(t),
                                       fault_labels)
            assert answer == expected, (s, t, faults)


# --------------------------------------------------------------- variant sweeps

@pytest.mark.parametrize("variant", [SchemeVariant.DETERMINISTIC_NEARLINEAR,
                                     SchemeVariant.DETERMINISTIC_POLY,
                                     SchemeVariant.RANDOMIZED_FULL])
def test_hierarchy_variants_agree_with_ground_truth(variant):
    graph = random_connected_graph(18, 40, seed=6)
    config = FTCConfig(max_faults=3, variant=variant)
    labeling = FTCLabeling(graph, config)
    assert audit(labeling, graph, num_queries=60, max_faults=3, seed=7) == []


@pytest.mark.parametrize("rule", [ThresholdRule.PAPER, ThresholdRule.PRACTICAL])
def test_threshold_rules_agree_with_ground_truth(rule):
    graph = random_connected_graph(20, 50, seed=8)
    config = FTCConfig(max_faults=2, threshold_rule=rule)
    labeling = FTCLabeling(graph, config)
    assert audit(labeling, graph, num_queries=60, max_faults=2, seed=9) == []


def test_sketch_full_variant_mostly_correct():
    graph = random_connected_graph(16, 36, seed=10)
    config = FTCConfig(max_faults=2, variant=SchemeVariant.SKETCH_FULL, random_seed=3)
    labeling = FTCLabeling(graph, config)
    mismatches = audit(labeling, graph, num_queries=60, max_faults=2, seed=11)
    # The sketch scheme is randomized; with full-support repetitions errors
    # should be absent or extremely rare on an instance of this size.
    assert len(mismatches) <= 1


def test_basic_and_fast_engines_agree():
    graph = random_connected_graph(20, 45, seed=12)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=3))
    rng = random.Random(13)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for _ in range(40):
        faults = rng.sample(edges, 3)
        s, t = rng.sample(vertices, 2)
        fast = labeling.connected(s, t, faults, use_fast_engine=True)
        basic = labeling.connected(s, t, faults, use_fast_engine=False)
        assert fast == basic == graph.connected(s, t, removed=faults)


def test_compact_and_full_edge_ids_agree():
    graph = random_connected_graph(14, 30, seed=14)
    for mode in ("compact", "full"):
        labeling = FTCLabeling(graph, FTCConfig(max_faults=2, edge_id_mode=mode))
        assert audit(labeling, graph, num_queries=40, max_faults=2, seed=15) == []


# ---------------------------------------------------------------------- oracle

def test_oracle_audit_perfect_for_deterministic():
    graph = random_connected_graph(15, 34, seed=16)
    oracle = FTConnectivityOracle(graph, max_faults=2)
    rng = random.Random(17)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    queries = []
    for _ in range(50):
        faults = rng.sample(edges, rng.randint(0, 2))
        s, t = rng.sample(vertices, 2)
        queries.append((s, t, faults))
    report = oracle.audit(queries)
    assert report["disagree"] == 0
    assert report["failures"] == 0
    assert report["accuracy"] == 1.0
    assert oracle.queries_answered == 50


def test_oracle_config_mismatch_rejected():
    import warnings

    graph = random_connected_graph(10, 20, seed=18)
    with warnings.catch_warnings():
        # Passing both max_faults and config is the deprecated dual shape
        # (tests/test_oracle_protocol.py covers the warning itself).
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ValueError):
            FTConnectivityOracle(graph, max_faults=2, config=FTCConfig(max_faults=3))


def test_oracle_audit_surfaces_programming_errors():
    """``audit`` counts only benign ``QueryFailure`` as a failure; genuine
    defects (KeyError, TypeError, ...) must propagate to the caller."""
    from repro.core.query import QueryFailure

    graph = random_connected_graph(10, 20, seed=19)
    oracle = FTConnectivityOracle(graph, max_faults=2)
    vertices = sorted(graph.vertices())
    queries = [(vertices[0], vertices[1], [])]

    oracle.connected = lambda s, t, faults=(): (_ for _ in ()).throw(KeyError("bug"))
    with pytest.raises(KeyError):
        oracle.audit(queries)

    oracle.connected = lambda s, t, faults=(): (_ for _ in ()).throw(QueryFailure("whp miss"))
    report = oracle.audit(queries)
    assert report["failures"] == 1
    assert report["disagree"] == 0


# --------------------------------------------------------------- property tests

@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_ftc_property_random_graphs(seed):
    rng = random.Random(seed)
    n = rng.randint(8, 16)
    m = rng.randint(n, min(2 * n, n * (n - 1) // 2))
    graph = random_connected_graph(n, m, seed=seed)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    assert audit(labeling, graph, num_queries=25, max_faults=2, seed=seed + 1) == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_ftc_property_fault_on_bridge(seed):
    """Faults on tree/bridge edges (the hard case: disconnections must be found)."""
    rng = random.Random(seed)
    # A path with a few extra chords: most edges are bridges.
    n = rng.randint(8, 14)
    nx_graph = nx.path_graph(n)
    for _ in range(rng.randint(1, 3)):
        u, v = rng.sample(range(n), 2)
        if u != v:
            nx_graph.add_edge(u, v)
    graph = Graph.from_networkx(nx_graph)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    assert audit(labeling, graph, num_queries=25, max_faults=2, seed=seed + 2) == []
