"""Tests for the applications: covers, distance labeling, compact routing."""

import networkx as nx
import pytest

from repro.applications import (FaultTolerantDistanceLabeling, ForbiddenSetRoutingScheme,
                                build_scale_covers)
from repro.applications.covers import build_cover
from repro.applications.distance_labeling import UNREACHABLE
from repro.graphs import Graph
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload


def small_graph(seed=1, n=18, m=36):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


# --------------------------------------------------------------------- covers

def test_cover_covers_every_ball():
    graph = small_graph(seed=2)
    cover = build_cover(graph, radius=2, stretch_parameter=2)
    assert cover.covers_all_balls(graph)
    assert cover.max_membership() >= 1
    for cluster in cover.clusters:
        assert cluster <= set(graph.vertices())


def test_cover_radius_zero_and_validation():
    graph = small_graph(seed=3)
    cover = build_cover(graph, radius=0, stretch_parameter=2)
    assert cover.covers_all_balls(graph)
    with pytest.raises(ValueError):
        build_cover(graph, radius=-1)
    with pytest.raises(ValueError):
        build_cover(graph, radius=1, stretch_parameter=0)


def test_scale_covers_reach_whole_graph():
    graph = small_graph(seed=4)
    covers = build_scale_covers(graph, stretch_parameter=2)
    assert covers
    last = covers[-1]
    assert any(len(cluster) == graph.num_vertices() for cluster in last.clusters)


# ----------------------------------------------------------- distance labeling

def test_distance_labeling_zero_and_unreachable():
    graph = Graph([(0, 1), (1, 2), (2, 3)])
    scheme = FaultTolerantDistanceLabeling(graph, max_faults=1)
    assert scheme.estimate_distance(1, 1) == 0.0
    assert scheme.estimate_distance(0, 3, faults=[(1, 2)]) == UNREACHABLE


def test_distance_labeling_estimates_upper_bound_like():
    graph = make_graph(GraphFamily.GRID, n=16, seed=5)
    scheme = FaultTolerantDistanceLabeling(graph, max_faults=2, stretch_parameter=2)
    nx_graph = graph.to_networkx()
    vertices = sorted(graph.vertices())
    for s, t in [(vertices[0], vertices[-1]), (vertices[1], vertices[-2])]:
        estimate = scheme.estimate_distance(s, t)
        true_distance = nx.shortest_path_length(nx_graph, s, t)
        assert estimate != UNREACHABLE
        assert estimate >= 1.0
        # The certificate is at most the O(|F| k)-style blow-up of the truth.
        assert estimate <= 4 * scheme.stretch_parameter * max(true_distance, 1) + 4


def test_distance_labeling_stretch_report():
    graph = small_graph(seed=6, n=14, m=26)
    scheme = FaultTolerantDistanceLabeling(graph, max_faults=2)
    workload = make_query_workload(graph, num_queries=15, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=7)
    report = scheme.stretch_report(workload.queries)
    assert report["total"] == 15
    assert report["finite_queries"] + report["unreachable_agreements"] <= 15
    if report["finite_queries"]:
        assert report["max_stretch"] >= 1.0 or report["mean_stretch"] > 0


def test_distance_labeling_label_sizes():
    graph = small_graph(seed=8, n=12, m=22)
    scheme = FaultTolerantDistanceLabeling(graph, max_faults=1)
    stats = scheme.label_size_stats()
    assert stats["scales"] >= 1
    assert stats["max_vertex_label_bits"] > 0


# ------------------------------------------------------------------- routing

def test_routing_without_faults_reaches_target():
    graph = small_graph(seed=9)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=2)
    vertices = sorted(graph.vertices())
    result = scheme.route(vertices[0], vertices[-1])
    assert result.delivered
    assert result.path[0] == vertices[0]
    assert result.path[-1] == vertices[-1]
    assert result.hops == len(result.path) - 1


def test_routing_avoids_faulty_edges():
    graph = small_graph(seed=10)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=2)
    workload = make_query_workload(graph, num_queries=20, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=11)
    nx_graph = graph.to_networkx()
    for (s, t, faults), expected in workload.pairs():
        result = scheme.route(s, t, faults)
        if expected:
            assert result.delivered, (s, t, faults)
            fault_set = {tuple(sorted(edge, key=repr)) for edge in faults}
            for u, v in zip(result.path, result.path[1:]):
                assert graph.has_edge(u, v)
                assert tuple(sorted((u, v), key=repr)) not in fault_set
        else:
            assert not result.delivered


def test_routing_rejects_too_many_faults():
    graph = small_graph(seed=12)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=1)
    edges = sorted(graph.edges())[:2]
    with pytest.raises(ValueError):
        scheme.route(0, 1, edges)


def test_routing_self_delivery_and_tables():
    graph = small_graph(seed=13)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=1)
    result = scheme.route(3, 3)
    assert result.delivered and result.hops == 0
    tables = scheme.table_size_stats()
    assert tables["max_table_bits"] > 0
    assert tables["total_table_bits"] >= tables["max_table_bits"]


def test_routing_stretch_report():
    graph = small_graph(seed=14, n=16, m=32)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=2)
    workload = make_query_workload(graph, num_queries=15, max_faults=2, seed=15)
    report = scheme.stretch_report(workload.queries)
    assert report["total"] == 15
    if report["delivered"]:
        assert report["mean_stretch"] >= 1.0
