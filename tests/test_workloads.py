"""Tests for workload generation (graphs, faults, queries)."""

import pytest

from repro.baselines import ExactConnectivityOracle
from repro.workloads import (FaultModel, GraphFamily, make_graph, make_query_workload,
                             sample_fault_sets)
from repro.workloads.faults import disconnecting_fraction
from repro.workloads.graphs import graph_summary
from repro.workloads.queries import audit_scheme


@pytest.mark.parametrize("family", list(GraphFamily))
def test_every_family_produces_connected_graphs(family):
    graph = make_graph(family, n=30, seed=2)
    assert graph.is_connected()
    assert graph.num_vertices() >= 25
    summary = graph_summary(graph)
    assert summary["n"] == graph.num_vertices()
    assert summary["avg_degree"] > 0


def test_make_graph_rejects_tiny_n():
    with pytest.raises(ValueError):
        make_graph(GraphFamily.ERDOS_RENYI, n=1)


def test_graph_generation_is_reproducible():
    first = make_graph(GraphFamily.ERDOS_RENYI, n=40, seed=11)
    second = make_graph(GraphFamily.ERDOS_RENYI, n=40, seed=11)
    assert sorted(first.edges()) == sorted(second.edges())


@pytest.mark.parametrize("model", list(FaultModel))
def test_fault_sets_have_requested_size(model):
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=30, seed=3)
    fault_sets = sample_fault_sets(graph, num_sets=10, faults_per_set=3, model=model, seed=4)
    assert len(fault_sets) == 10
    for faults in fault_sets:
        assert len(faults) == 3
        for edge in faults:
            assert graph.has_edge(*edge)


def test_fault_sets_rejects_negative():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=20, seed=5)
    with pytest.raises(ValueError):
        sample_fault_sets(graph, 5, -1)


def test_tree_biased_faults_disconnect_more_often_than_uniform():
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=60, seed=6, density=1.2)
    tree_faults = sample_fault_sets(graph, 30, 2, model=FaultModel.TREE_BIASED, seed=7)
    uniform_faults = sample_fault_sets(graph, 30, 2, model=FaultModel.UNIFORM, seed=7)
    assert disconnecting_fraction(graph, tree_faults) >= disconnecting_fraction(graph, uniform_faults)


def test_query_workload_ground_truth():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=25, seed=8)
    workload = make_query_workload(graph, num_queries=30, max_faults=2, seed=9)
    assert len(workload) == 30
    oracle = ExactConnectivityOracle(graph)
    for (s, t, faults), expected in workload.pairs():
        assert oracle.connected(s, t, faults) == expected
    assert 0.0 <= workload.disconnected_fraction() <= 1.0


def test_audit_scheme_counts():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=20, seed=10)
    workload = make_query_workload(graph, num_queries=20, max_faults=2, seed=11)
    oracle = ExactConnectivityOracle(graph)
    perfect = audit_scheme(oracle.connected, workload)
    assert perfect["accuracy"] == 1.0
    always_yes = audit_scheme(lambda s, t, faults: True, workload)
    assert always_yes["agree"] + always_yes["wrong"] == len(workload)


def test_query_workload_variable_fault_count():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=20, seed=12)
    workload = make_query_workload(graph, num_queries=25, max_faults=3,
                                   exact_fault_count=False, seed=13)
    counts = {len(faults) for (_, _, faults) in workload.queries}
    assert counts <= {0, 1, 2, 3}
    assert len(counts) >= 2
