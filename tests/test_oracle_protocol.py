"""Conformance suite for the oracle protocol (:mod:`repro.api`).

One contract, four transports: the same query/fault/stats scenarios run
against a freshly built oracle ("build"), a snapshot-rehydrated oracle
("snapshot"), a process-pool oracle over the same snapshot file ("pool"),
and a remote oracle speaking to a live server ("tcp"), and the answers must
be **bit-identical** across all four — plus equal to BFS ground truth, since
the scheme under test is deterministic.

Also covered here: the shared error contract (``KeyError`` for unknown ids,
``ValueError`` for over-budget fault sets, everything mirrored into the
:class:`~repro.errors.OracleError` hierarchy by the remote transport), the
``stats() -> OracleStats`` surface including Prometheus rendering, context
managers with idempotent ``close()``, URI-based transport selection
(:func:`~repro.api.open_oracle`), and the deprecation shim over the legacy
``max_faults``-vs-``config`` constructor parameters.
"""

import json
import random
import warnings

import pytest

from repro.api import (Oracle, OracleProtocol, OracleStats, RemoteBatchSession,
                       RemoteOracle, RemoteOracleError, TransportError,
                       open_oracle, parse_oracle_uri)
from repro.core.config import FTCConfig, SchemeVariant, resolve_ftc_config
from repro.core.oracle import FTConnectivityOracle
from repro.core.snapshot import RehydratedOracle
from repro.errors import OracleClosedError, OracleError
from repro.server import BackgroundServer
from repro.workloads import GraphFamily, make_graph

MAX_FAULTS = 3
TRANSPORTS = ("build", "snapshot", "pool", "tcp")


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """One graph served through all four transports (construction is slow)."""
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=28, seed=11)
    built = Oracle.build(graph, max_faults=MAX_FAULTS)
    data = built.to_snapshot_bytes()
    snapshot_path = tmp_path_factory.mktemp("protocol") / "world.ftcs"
    snapshot_path.write_bytes(data)
    server = BackgroundServer(Oracle.load(data), max_sessions=8).start()
    remote = Oracle.connect(server.host, server.port)
    pool = Oracle.pool(snapshot_path, workers=2)
    oracles = {"build": built, "snapshot": Oracle.load(data), "pool": pool,
               "tcp": remote}
    try:
        yield graph, oracles, server
    finally:
        pool.close()
        remote.close()
        server.stop()


def scenarios(graph, seed=5):
    """The shared scenario set: ``(faults, pairs)`` with growing fault sets,
    duplicate restatements, and permutations."""
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())

    def pairs(count):
        return [tuple(rng.sample(vertices, 2)) for _ in range(count)]

    out = [([], pairs(6))]
    for size in (1, 2, MAX_FAULTS):
        faults = rng.sample(edges, size)
        out.append((faults, pairs(8)))
    # The same fault restated twice must count once against the budget.
    base = rng.sample(edges, MAX_FAULTS)
    out.append((base + [base[0]], pairs(6)))
    out.append((list(reversed(base)), pairs(6)))
    return out


# ------------------------------------------------------------- conformance

def test_all_transports_satisfy_the_protocol(world):
    _, oracles, _ = world
    for name in TRANSPORTS:
        oracle = oracles[name]
        assert isinstance(oracle, OracleProtocol), name
        assert oracle.transport == name
        assert oracle.max_faults == MAX_FAULTS


def test_bit_identical_answers_across_transports(world):
    """The acceptance criterion: one scenario set, three transports, equal
    answers everywhere (and equal to BFS ground truth)."""
    graph, oracles, _ = world
    for faults, pairs in scenarios(graph):
        truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
        answers = {name: oracles[name].connected_many(pairs, faults)
                   for name in TRANSPORTS}
        assert answers["build"] == answers["snapshot"] == answers["tcp"] == truth, \
            (faults, pairs)


def test_single_query_parity(world):
    graph, oracles, _ = world
    faults = sorted(graph.edges())[:2]
    vertices = sorted(graph.vertices())
    for s, t in [(vertices[0], vertices[-1]), (vertices[3], vertices[7])]:
        answers = {oracles[name].connected(s, t, faults) for name in TRANSPORTS}
        assert len(answers) == 1


def test_batch_session_structure_parity(world):
    """``batch_session`` pins a fault set on every transport and reports the
    same decomposition structure."""
    graph, oracles, _ = world
    faults = sorted(graph.edges())[:MAX_FAULTS]
    sessions = {name: oracles[name].batch_session(faults) for name in TRANSPORTS}
    components = {name: sessions[name].num_components() for name in TRANSPORTS}
    fragments = {name: sessions[name].num_fragments() for name in TRANSPORTS}
    assert len(set(components.values())) == 1, components
    assert len(set(fragments.values())) == 1, fragments
    assert isinstance(sessions["tcp"], RemoteBatchSession)
    # The remote session's pinned queries agree with the oracle surface.
    vertices = sorted(graph.vertices())
    pairs = [(vertices[0], vertices[5]), (vertices[2], vertices[9])]
    assert sessions["tcp"].connected_many(pairs) == \
        oracles["build"].connected_many(pairs, faults)


# ------------------------------------------------------------ error contract

@pytest.mark.parametrize("transport", TRANSPORTS)
def test_unknown_vertex_raises_keyerror(world, transport):
    _, oracles, _ = world
    with pytest.raises(KeyError):
        oracles[transport].connected_many([("no-such-vertex", "nope")], [])


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_over_budget_raises_valueerror(world, transport):
    graph, oracles, _ = world
    faults = sorted(graph.edges())[:MAX_FAULTS + 1]
    vertices = sorted(graph.vertices())
    with pytest.raises(ValueError):
        oracles[transport].connected_many([(vertices[0], vertices[1])], faults)


def test_remote_errors_join_the_shared_hierarchy(world):
    """The remote transport's mapped errors are OracleErrors carrying the
    wire code *and* instances of the local exception type."""
    graph, oracles, _ = world
    vertices = sorted(graph.vertices())
    with pytest.raises(KeyError) as caught:
        oracles["tcp"].connected(vertices[0], "no-such-vertex")
    assert isinstance(caught.value, OracleError)
    assert isinstance(caught.value, RemoteOracleError)
    assert caught.value.code == "unknown-vertex"
    faults = sorted(graph.edges())[:MAX_FAULTS + 1]
    with pytest.raises(ValueError) as caught:
        oracles["tcp"].connected_many([(vertices[0], vertices[1])], faults)
    assert isinstance(caught.value, OracleError)
    assert caught.value.code == "over-budget"


# ------------------------------------------------------------------- stats

def test_stats_are_normalized_across_transports(world):
    graph, oracles, _ = world
    for name in TRANSPORTS:
        stats = oracles[name].stats()
        assert isinstance(stats, OracleStats)
        assert stats.transport == name
        assert stats.max_faults == MAX_FAULTS
        assert stats.vertices == graph.num_vertices()
        assert stats.edges == graph.num_edges()
        payload = stats.to_dict()
        json.dumps(payload)  # must be JSON-ready as-is
        assert payload["transport"] == name


def test_stats_prometheus_rendering(world):
    _, oracles, _ = world
    for name in TRANSPORTS:
        text = oracles[name].stats().to_prometheus()
        assert "repro_oracle_max_faults %d" % MAX_FAULTS in text
        assert 'repro_oracle_info{transport="%s"' % name in text
        assert text.endswith("\n")
    # The tcp transport carries the server's full metrics as labeled families.
    remote_text = oracles["tcp"].stats().to_prometheus()
    assert "repro_server_requests_total" in remote_text
    assert 'repro_server_requests{op="' in remote_text
    assert "repro_server_sessions_hit_rate" in remote_text


def test_prometheus_label_escaping_and_by_label_flattening():
    stats = OracleStats(
        transport="tcp", max_faults=2,
        extra={"server": {
            "requests_by_op": {"connected_many": 3, "stats": 1},
            "errors_by_code": {'quote"code': 2},
            "latency_by_op": {"ping": {"count": 1, "mean_ms": 0.5}},
        }})
    text = stats.to_prometheus()
    assert 'repro_server_requests{op="connected_many"} 3' in text
    assert 'repro_server_errors{code="quote\\"code"} 2' in text
    assert 'repro_server_latency_count{op="ping"} 1' in text
    assert 'repro_server_latency_mean_ms{op="ping"} 0.5' in text


# ------------------------------------------------- lifecycle / context use

def _tiny_graph():
    return make_graph(GraphFamily.TREE_PLUS_CHORDS, n=10, seed=3, density=1.4)


def test_local_transports_are_context_managers():
    graph = _tiny_graph()
    vertices = sorted(graph.vertices())
    with Oracle.build(graph, max_faults=2) as built:
        assert isinstance(built, FTConnectivityOracle)
        built.connected(vertices[0], vertices[-1])
        data = built.to_snapshot_bytes()
    built.close()  # idempotent
    with Oracle.load(data) as rehydrated:
        assert isinstance(rehydrated, RehydratedOracle)
        rehydrated.connected(vertices[0], vertices[-1])
    rehydrated.close()  # idempotent
    # close() released the label buffers (snapshot oracles may be mmap-backed);
    # the cache is empty and further queries fail loudly instead of answering
    # from freed state.
    assert rehydrated.session_cache_info()["size"] == 0
    with pytest.raises(TransportError):
        rehydrated.connected(vertices[0], vertices[-1])
    with pytest.raises(OracleClosedError):
        rehydrated.connected_many([(vertices[0], vertices[-1])], [])


def test_remote_transport_close_is_idempotent(world):
    _, _, server = world
    remote = Oracle.connect(server.host, server.port)
    with remote:
        assert remote.ping()["pong"] is True
    remote.close()  # second close must not raise
    with pytest.raises(TransportError):
        remote.ping()
    # max_faults was primed at connect time, so a type check on the closed
    # oracle is still a pure attribute read — no I/O, no TransportError
    # (runtime_checkable isinstance probes properties on Python < 3.12).
    assert remote.max_faults == MAX_FAULTS
    assert isinstance(remote, OracleProtocol)


def test_connect_refused_raises_transport_error():
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(TransportError):
        Oracle.connect("127.0.0.1", port)


# -------------------------------------------------------- URI selection

def test_parse_oracle_uri():
    assert parse_oracle_uri("snapshot:a/b.ftcs") == ("snapshot", "a/b.ftcs")
    assert parse_oracle_uri("tcp://h:1") == ("tcp", "h:1")
    assert parse_oracle_uri("build:edges.txt") == ("build", "edges.txt")
    assert parse_oracle_uri("plain/path.ftcs") == ("snapshot", "plain/path.ftcs")
    assert parse_oracle_uri("pool:a/b.ftcs") == ("pool", "a/b.ftcs")
    assert parse_oracle_uri("pool:b.ftcs?workers=4") == \
        ("pool", "b.ftcs?workers=4")
    with pytest.raises(ValueError):
        parse_oracle_uri("ftp://nope")
    with pytest.raises(ValueError):
        parse_oracle_uri("edges.txt")


def test_parse_pool_query():
    from repro.api import parse_pool_query

    assert parse_pool_query("b.ftcs") == ("b.ftcs", {})
    assert parse_pool_query("b.ftcs?workers=4") == ("b.ftcs", {"workers": 4})
    with pytest.raises(ValueError):
        parse_pool_query("b.ftcs?workers=0")
    with pytest.raises(ValueError):
        parse_pool_query("b.ftcs?jobs=2")


def test_open_oracle_routes_by_uri(tmp_path, world):
    graph, oracles, server = world
    snapshot_path = tmp_path / "labeling.ftcs"
    snapshot_path.write_bytes(oracles["build"].to_snapshot_bytes())
    edges_path = tmp_path / "edges.txt"
    edges_path.write_text("a b\nb c\nc a\n")

    loaded = open_oracle("snapshot:%s" % snapshot_path)
    assert isinstance(loaded, RehydratedOracle)
    assert isinstance(open_oracle(str(snapshot_path)), RehydratedOracle)

    built = open_oracle("build:%s" % edges_path, max_faults=1)
    assert isinstance(built, FTConnectivityOracle)
    assert built.connected("a", "c", faults=[("a", "b")]) is True

    with open_oracle("tcp://%s:%d" % (server.host, server.port)) as remote:
        assert isinstance(remote, RemoteOracle)
        assert remote.ping()["pong"] is True

    from repro.pool import PooledOracle

    with open_oracle("pool:%s?workers=1" % snapshot_path) as pooled:
        assert isinstance(pooled, PooledOracle)
        assert pooled.workers == 1
        vertices = sorted(graph.vertices())
        assert pooled.connected_many([(vertices[0], vertices[1])], []) == \
            oracles["build"].connected_many([(vertices[0], vertices[1])], [])

    with pytest.raises(ValueError):
        open_oracle("snapshot:")
    with pytest.raises(ValueError):
        open_oracle("build:")
    with pytest.raises(ValueError):
        open_oracle("tcp://no-port")
    with pytest.raises(ValueError):
        open_oracle("pool:")
    with pytest.raises(ValueError):
        # Construction options must never silently do nothing on pool URIs.
        open_oracle("pool:%s" % snapshot_path, jobs=2)


def test_oracle_is_a_factory_namespace():
    with pytest.raises(TypeError):
        Oracle()


def test_cli_constructs_only_through_the_facade():
    """Acceptance criterion: the CLI holds no transport-specific construction
    — enforced by the invariant linter's seam-discipline rule (RPL001), which
    understands imports and attribute references instead of grepping raw
    source, and honors no baseline here: the CLI has zero grandfathered debt."""
    import repro.cli
    from pathlib import Path

    from repro.analysis import run_analysis, rules_by_code

    cli_path = Path(repro.cli.__file__).resolve()
    root = cli_path.parents[2]  # src/repro/cli.py -> repo root
    report = run_analysis(root, rules=[rules_by_code()["RPL001"]],
                          paths=[cli_path])
    assert report.findings == [], \
        "cli.py must construct oracles only through repro.api:\n%s" % \
        "\n".join(finding.render() for finding in report.findings)


# ------------------------------------------------- config resolver / shim

def test_resolver_builds_from_loose_parameters():
    config = resolve_ftc_config(max_faults=2, variant="sketch-whp", random_seed=7)
    assert config.max_faults == 2
    assert config.variant is SchemeVariant.SKETCH_WHP
    assert config.random_seed == 7


def test_resolver_requires_one_source_of_truth():
    with pytest.raises(TypeError):
        resolve_ftc_config()
    config = FTCConfig(max_faults=2)
    assert resolve_ftc_config(config=config) is config


def test_legacy_dual_parameters_warn_and_still_work():
    graph = _tiny_graph()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        oracle = FTConnectivityOracle(graph, max_faults=2,
                                      config=FTCConfig(max_faults=2))
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert oracle.max_faults == 2


def test_legacy_dual_parameter_disagreement_still_rejected():
    graph = _tiny_graph()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ValueError):
            FTConnectivityOracle(graph, max_faults=2, config=FTCConfig(max_faults=3))
        with pytest.raises(ValueError):
            Oracle.build(graph, max_faults=2, config=FTCConfig(max_faults=3))


# ------------------------------------------------------- client lifecycle

def test_query_client_close_is_idempotent(world):
    from repro.server import QueryClient

    _, _, server = world
    client = QueryClient(server.host, server.port)
    assert client.ping()["pong"] is True
    client.close()
    client.close()  # double close must not raise
    with QueryClient(server.host, server.port) as scoped:
        assert scoped.ping()["pong"] is True
    scoped.close()  # close after __exit__ must not raise


def test_async_query_client_context_manager(world):
    import asyncio

    from repro.server import AsyncQueryClient

    _, _, server = world

    async def scenario():
        async with await AsyncQueryClient.connect(server.host, server.port) as client:
            assert (await client.ping())["pong"] is True
            info = await client.session_info([])
            assert info["num_components"] == 1
        await client.close()  # double close must not raise

    asyncio.run(scenario())
