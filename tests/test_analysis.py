"""Tests for the repro.analysis invariant linter.

Every rule gets the fixture triple — a failing file, a passing file, and a
suppressed file — built as miniature repos under ``tmp_path`` so the rules
see realistic repo-relative paths.  On top of that: the baseline round-trip,
the JSON output schema, the engine's exit codes, and the acceptance
criterion that the real repository lints clean against its committed
baseline.
"""

from __future__ import annotations

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (BASELINE_FILENAME, BaselineError, Finding,
                            load_baseline, partition, run_analysis,
                            rules_by_code, suppressed_codes, write_baseline)
from repro.analysis.engine import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_repo(tmp_path: Path, files: dict) -> Path:
    """Materialize ``{relpath: source}`` as a miniature repo."""
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def lint(tmp_path: Path, files: dict, code: str) -> list:
    """Run one rule over a miniature repo; returns post-suppression findings."""
    root = make_repo(tmp_path, files)
    report = run_analysis(root, rules=[rules_by_code()[code]])
    return report.findings


ALLOW = "# repro: allow[%s] fixture-justified"


# ---------------------------------------------------------------- RPL001

class TestSeamDiscipline:
    BAD = """
        from repro.core.ftc import FTCLabeling

        def build(graph, config):
            return FTCLabeling(graph, config)
    """

    def test_flags_transport_imports_and_uses(self, tmp_path):
        findings = lint(tmp_path, {"src/repro/cli.py": self.BAD}, "RPL001")
        assert [finding.code for finding in findings] == ["RPL001", "RPL001"]
        assert "repro.core.ftc" in findings[0].message
        assert "FTCLabeling" in findings[1].message

    def test_benchmarks_are_in_scope_but_library_code_is_not(self, tmp_path):
        findings = lint(tmp_path, {
            "benchmarks/bench_x.py": "from repro.server.client import QueryClient\n",
            "src/repro/api.py": "from repro.core.ftc import FTCLabeling\n",
        }, "RPL001")
        assert [finding.path for finding in findings] == ["benchmarks/bench_x.py"]

    def test_facade_construction_passes(self, tmp_path):
        clean = """
            from repro.api import Oracle, open_oracle

            def build(path):
                return open_oracle("snapshot:%s" % path)
        """
        assert lint(tmp_path, {"src/repro/cli.py": clean}, "RPL001") == []

    def test_inline_suppression_silences_the_line(self, tmp_path):
        source = ("from repro.core.ftc import FTCLabeling  %s\n"
                  % (ALLOW % "RPL001"))
        root = make_repo(tmp_path, {"src/repro/cli.py": source})
        report = run_analysis(root, rules=[rules_by_code()["RPL001"]])
        assert report.findings == [] and report.suppressed == 1


# ---------------------------------------------------------------- RPL002

class TestErrorDiscipline:
    def test_flags_bare_except_and_swallowing(self, tmp_path):
        source = """
            import contextlib

            def risky():
                try:
                    return 1
                except:
                    pass

            def swallow():
                try:
                    return 2
                except Exception:
                    pass

            def quiet():
                with contextlib.suppress(Exception):
                    return 3
        """
        findings = lint(tmp_path, {"src/repro/core/thing.py": source}, "RPL002")
        messages = " / ".join(finding.message for finding in findings)
        assert len(findings) == 3
        assert "bare except" in messages and "pass-only body" in messages \
            and "contextlib.suppress" in messages

    def test_handled_broad_except_passes(self, tmp_path):
        source = """
            def guarded():
                try:
                    return 1
                except Exception as error:
                    record(error)
                    return 0
        """
        assert lint(tmp_path, {"src/repro/core/thing.py": source},
                    "RPL002") == []

    def test_narrow_suppress_passes(self, tmp_path):
        source = """
            import contextlib

            def close(writer):
                with contextlib.suppress(OSError):
                    writer.close()
        """
        assert lint(tmp_path, {"src/repro/server/x.py": source}, "RPL002") == []

    def test_raise_outside_hierarchy_flagged_at_api_boundary(self, tmp_path):
        source = """
            class WeirdError(ArithmeticError):
                pass

            def boundary(flag):
                if flag:
                    raise ZeroDivisionError("not in the hierarchy")
                raise WeirdError("locally defined: allowed")
        """
        findings = lint(tmp_path, {"src/repro/api.py": source}, "RPL002")
        assert len(findings) == 1
        assert "ZeroDivisionError" in findings[0].message

    def test_raise_rules_skip_non_boundary_modules(self, tmp_path):
        source = "def f():\n    raise ZeroDivisionError('internal')\n"
        assert lint(tmp_path, {"src/repro/core/thing.py": source},
                    "RPL002") == []

    def test_shared_hierarchy_builtins_and_reraise_pass(self, tmp_path):
        source = """
            from repro.errors import OracleError, TransportError

            def boundary(mode, error):
                if mode == 1:
                    raise TransportError("connection refused")
                if mode == 2:
                    raise KeyError("unknown vertex")
                if mode == 3:
                    raise map_error(error)
                raise
        """
        assert lint(tmp_path, {"src/repro/server/x.py": source}, "RPL002") == []

    def test_suppression_on_the_raise_line(self, tmp_path):
        source = ("def f():\n"
                  "    raise ZeroDivisionError('x')  %s\n" % (ALLOW % "RPL002"))
        root = make_repo(tmp_path, {"src/repro/api.py": source})
        report = run_analysis(root, rules=[rules_by_code()["RPL002"]])
        assert report.findings == [] and report.suppressed == 1


# ---------------------------------------------------------------- RPL003

class TestAsyncSafety:
    def test_blocking_calls_inside_async_def(self, tmp_path):
        source = """
            import time

            async def handler(self, faults):
                time.sleep(0.1)
                session = self.oracle.batch_session(faults)
                return session
        """
        findings = lint(tmp_path, {"src/repro/server/x.py": source}, "RPL003")
        assert len(findings) == 2
        assert "time.sleep" in findings[0].message
        assert "batch_session" in findings[1].message

    def test_awaited_and_offloaded_calls_pass(self, tmp_path):
        source = """
            async def handler(self, pairs, faults):
                answers = await self.sessions.connected_many(pairs, faults)
                loop = get_loop()
                more = await loop.run_in_executor(
                    None, lambda: self.oracle.batch_session(faults))
                return answers, more

            def sync_path(self, faults):
                return self.oracle.batch_session(faults)
        """
        assert lint(tmp_path, {"src/repro/server/x.py": source}, "RPL003") == []

    def test_scope_is_server_only(self, tmp_path):
        source = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert lint(tmp_path, {"src/repro/core/x.py": source}, "RPL003") == []

    def test_suppression(self, tmp_path):
        source = ("import time\n\nasync def f():\n"
                  "    time.sleep(0)  %s\n" % (ALLOW % "RPL003"))
        root = make_repo(tmp_path, {"src/repro/server/x.py": source})
        report = run_analysis(root, rules=[rules_by_code()["RPL003"]])
        assert report.findings == [] and report.suppressed == 1


# ---------------------------------------------------------------- RPL004

class TestLockDiscipline:
    GOOD = """
        import threading
        from collections import Counter

        class ServerMetrics:
            def __init__(self):
                self._lock = threading.Lock()
                self._requests = Counter()

            def record_request(self, op, seconds):
                with self._lock:
                    self._requests[op] += 1
    """
    BAD = """
        import threading
        from collections import Counter

        class ServerMetrics:
            def __init__(self):
                self._lock = threading.Lock()
                self._requests = Counter()

            def record_request(self, op, seconds):
                self._requests[op] += 1

            def reset(self):
                self._requests.clear()
    """

    def test_unlocked_mutations_flagged(self, tmp_path):
        findings = lint(tmp_path, {"src/repro/server/metrics.py": self.BAD},
                        "RPL004")
        assert len(findings) == 2
        assert "record_request" in findings[0].message
        assert ".clear()" in findings[1].message

    def test_locked_mutations_and_init_pass(self, tmp_path):
        assert lint(tmp_path, {"src/repro/server/metrics.py": self.GOOD},
                    "RPL004") == []

    def test_only_registered_classes_are_checked(self, tmp_path):
        other = self.BAD.replace("ServerMetrics", "UnregisteredThing")
        assert lint(tmp_path, {"src/repro/server/metrics.py": other},
                    "RPL004") == []

    def test_suppression(self, tmp_path):
        source = self.BAD.replace(
            "self._requests[op] += 1",
            "self._requests[op] += 1  %s" % (ALLOW % "RPL004")).replace(
            "self._requests.clear()",
            "self._requests.clear()  %s" % (ALLOW % "RPL004"))
        root = make_repo(tmp_path, {"src/repro/server/metrics.py": source})
        report = run_analysis(root, rules=[rules_by_code()["RPL004"]])
        assert report.findings == [] and report.suppressed == 2

    MATCH_BAD = """
        import threading
        from collections import Counter

        class ServerMetrics:
            def __init__(self):
                self._lock = threading.Lock()
                self._requests = Counter()

            def record_request(self, op, seconds):
                match op:
                    case "query":
                        self._requests[op] += 1
                    case _:
                        self._requests.clear()
    """

    def test_mutations_inside_match_cases_flagged(self, tmp_path):
        findings = lint(tmp_path, {"src/repro/server/metrics.py": self.MATCH_BAD},
                        "RPL004")
        assert len(findings) == 2

    MATCH_GOOD = """
        import threading
        from collections import Counter

        class ServerMetrics:
            def __init__(self):
                self._lock = threading.Lock()
                self._requests = Counter()

            def record_request(self, op, seconds):
                with self._lock:
                    match op:
                        case "query":
                            self._requests[op] += 1
                        case _:
                            self._requests.clear()
    """

    def test_match_under_lock_passes(self, tmp_path):
        assert lint(tmp_path, {"src/repro/server/metrics.py": self.MATCH_GOOD},
                    "RPL004") == []


# ---------------------------------------------------------------- RPL005

class TestBulkScalarParity:
    def test_unregistered_bulk_op_flagged(self, tmp_path):
        source = """
            def widget(x):
                return x

            def widget_many(xs):
                return [widget(x) for x in xs]
        """
        findings = lint(tmp_path, {"src/repro/coding/widget.py": source},
                        "RPL005")
        assert len(findings) == 1
        assert "widget_many" in findings[0].message
        assert "PARITY_TABLE" in findings[0].message

    def test_registered_module_with_missing_members_flagged(self, tmp_path):
        # The real registry declares find_roots/find_roots_many in
        # repro.coding.rootfind; a drifted file at that path must fail.
        source = "def something_else():\n    return 1\n"
        findings = lint(tmp_path, {"src/repro/coding/rootfind.py": source},
                        "RPL005")
        assert findings
        assert all("no longer resolves" in finding.message
                   for finding in findings)

    def test_private_and_non_many_defs_ignored(self, tmp_path):
        source = """
            def _helper_many(xs):
                return xs

            def decode_many_deferred(xs):
                return xs
        """
        assert lint(tmp_path, {"src/repro/outdetect/extra.py": source},
                    "RPL005") == []

    def test_real_repo_registry_is_consistent(self):
        report = run_analysis(REPO_ROOT, rules=[rules_by_code()["RPL005"]])
        assert report.findings == [], \
            [finding.render() for finding in report.findings]


# ---------------------------------------------------------------- RPL006

class TestDeterminism:
    def test_ambient_entropy_flagged(self, tmp_path):
        source = """
            import random
            import time

            def jitter(edges):
                random.shuffle(edges)
                stamp = time.time()
                order = hash(str(stamp))
                for edge in set(edges):
                    yield edge, order
        """
        findings = lint(tmp_path, {"src/repro/build/x.py": source}, "RPL006")
        messages = [finding.message for finding in findings]
        assert len(findings) == 4
        assert any("random.shuffle" in message for message in messages)
        assert any("time.time" in message for message in messages)
        assert any("hash()" in message for message in messages)
        assert any("iterates a set" in message for message in messages)

    def test_seeded_rng_perf_counter_and_hash_dunder_pass(self, tmp_path):
        source = """
            import time
            from random import Random

            class Key:
                def __hash__(self):
                    return hash(("key", 1))

            def build(seed, items):
                rng = Random(seed)
                start = time.perf_counter()
                for item in sorted(set(items)):
                    rng.random()
                return time.perf_counter() - start
        """
        findings = lint(tmp_path, {"src/repro/build/x.py": source}, "RPL006")
        # rng.random() is a method on the seeded instance, not module-level
        # random.*; sorted(set(...)) fixes the order before iteration.
        assert findings == []

    def test_scope_excludes_workloads_and_server(self, tmp_path):
        source = "import random\n\ndef f():\n    return random.random()\n"
        assert lint(tmp_path, {"src/repro/workloads/x.py": source,
                               "src/repro/server/x.py": source},
                    "RPL006") == []

    def test_suppression(self, tmp_path):
        source = ("import time\n\ndef f():\n"
                  "    return time.time()  %s\n" % (ALLOW % "RPL006"))
        root = make_repo(tmp_path, {"src/repro/build/x.py": source})
        report = run_analysis(root, rules=[rules_by_code()["RPL006"]])
        assert report.findings == [] and report.suppressed == 1


# ---------------------------------------------------------------- RPL007

class TestSwapDiscipline:
    def test_oracle_assignment_outside_the_seam_flagged(self, tmp_path):
        source = """
            class Handler:
                def hijack(self, replacement):
                    self.oracle = replacement

            def rebind(manager, replacement):
                manager.oracle = replacement
        """
        findings = lint(tmp_path, {"src/repro/server/x.py": source}, "RPL007")
        assert len(findings) == 2
        assert all("swap_oracle" in finding.message for finding in findings)

    def test_allowed_sites_and_other_attributes_pass(self, tmp_path):
        source = """
            class SessionManager:
                def __init__(self, oracle):
                    self.oracle = oracle

                def swap_oracle(self, loader):
                    self.oracle = loader()

            class Other:
                def configure(self, oracle):
                    self.fallback = oracle
        """
        assert lint(tmp_path, {"src/repro/server/x.py": source},
                    "RPL007") == []

    def test_scope_is_the_server_package(self, tmp_path):
        source = "class X:\n    def f(self, o):\n        self.oracle = o\n"
        assert lint(tmp_path, {"src/repro/pool/x.py": source}, "RPL007") == []

    def test_real_repo_respects_the_swap_seam(self):
        report = run_analysis(REPO_ROOT, rules=[rules_by_code()["RPL007"]])
        assert report.findings == [], \
            [finding.render() for finding in report.findings]


# ----------------------------------------------------------- suppressions

def test_suppression_comments_are_tokenized_not_grepped():
    source = 'MESSAGE = "# repro: allow[RPL001] inside a string"\n'
    assert suppressed_codes(source) == {}


def test_suppression_star_and_lists():
    source = ("a = 1  # repro: allow[*] everything\n"
              "b = 2  # repro: allow[RPL001, RPL002] two codes\n"
              "c = 3  # repro: allow\n")
    codes = suppressed_codes(source)
    assert codes == {1: {"*"}, 2: {"RPL001", "RPL002"}}


def test_wrong_code_does_not_suppress(tmp_path):
    source = ("from repro.core.ftc import FTCLabeling  %s\n"
              % (ALLOW % "RPL002"))
    root = make_repo(tmp_path, {"src/repro/cli.py": source})
    report = run_analysis(root, rules=[rules_by_code()["RPL001"]])
    assert len(report.findings) == 1 and report.suppressed == 0


def test_suppression_codes_are_case_insensitive(tmp_path):
    """``allow[rpl001]`` suppresses RPL001, matching ``--rules`` parsing."""
    source = ("a = 1  # repro: allow[rpl001] lowercase\n"
              "b = 2  # repro: allow[Rpl001, rpl002] mixed case\n")
    assert suppressed_codes(source) == {1: {"RPL001"}, 2: {"RPL001", "RPL002"}}
    repo_source = ("from repro.core.ftc import FTCLabeling  "
                   "# repro: allow[rpl001] fixture-justified\n")
    root = make_repo(tmp_path, {"src/repro/cli.py": repo_source})
    report = run_analysis(root, rules=[rules_by_code()["RPL001"]])
    assert report.findings == [] and report.suppressed == 1


# ---------------------------------------------------------------- baseline

def test_baseline_round_trip(tmp_path):
    findings = [
        Finding("src/repro/x.py", 3, 0, "RPL001", "message one"),
        Finding("src/repro/x.py", 9, 4, "RPL001", "message one"),
        Finding("src/repro/y.py", 1, 0, "RPL006", "message two"),
    ]
    path = tmp_path / BASELINE_FILENAME
    assert write_baseline(path, findings) == 3
    baseline = load_baseline(path)
    assert baseline == Counter({"RPL001|src/repro/x.py|message one": 2,
                                "RPL006|src/repro/y.py|message two": 1})
    new, baselined, stale = partition(findings, baseline)
    assert new == [] and baselined == 3 and stale == []


def test_baseline_multiplicity_and_staleness():
    finding = Finding("src/repro/x.py", 3, 0, "RPL001", "message one")
    twice = [finding, Finding("src/repro/x.py", 30, 0, "RPL001", "message one")]
    baseline = Counter({finding.identity(): 1,
                        "RPL006|gone.py|fixed long ago": 1})
    new, baselined, stale = partition(twice, baseline)
    assert len(new) == 1 and baselined == 1
    assert stale == ["RPL006|gone.py|fixed long ago"]


def test_baseline_identity_ignores_line_numbers():
    a = Finding("p.py", 10, 0, "RPL001", "m")
    b = Finding("p.py", 99, 7, "RPL001", "m")
    assert a.identity() == b.identity()


def test_baseline_rejects_malformed_documents(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all")
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 1, "entries": {"x": 0}}))
    with pytest.raises(BaselineError):
        load_baseline(path)


# ------------------------------------------------------------ engine / CLI

def _violating_repo(tmp_path):
    return make_repo(tmp_path, {
        "src/repro/cli.py": "from repro.core.ftc import FTCLabeling\n"})


def test_exit_codes_and_baseline_flow(tmp_path, capsys):
    root = _violating_repo(tmp_path)
    assert analysis_main(["--root", str(root)]) == 1
    capsys.readouterr()
    assert analysis_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    assert analysis_main(["--root", str(root)]) == 0
    # --no-baseline resurrects the debt.
    assert analysis_main(["--root", str(root), "--no-baseline"]) == 1


def test_json_output_schema(tmp_path, capsys):
    root = _violating_repo(tmp_path)
    exit_code = analysis_main(["--root", str(root), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == 1 and payload["tool"] == "repro.analysis"
    assert payload["files_scanned"] == 1
    assert payload["rules_run"] == ["RPL001", "RPL002", "RPL003", "RPL004",
                                    "RPL005", "RPL006", "RPL007"]
    assert payload["counts_by_code"] == {"RPL001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "path", "line", "col", "message"}
    assert finding["path"] == "src/repro/cli.py" and finding["line"] == 1


def test_rule_selection_and_unknown_rule(tmp_path, capsys):
    root = _violating_repo(tmp_path)
    assert analysis_main(["--root", str(root), "--rules", "rpl006"]) == 0
    assert analysis_main(["--root", str(root), "--rules", "RPL999"]) == 2


def test_list_rules(capsys):
    assert analysis_main(["--list-rules", "--format", "json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert [rule["code"] for rule in listed] == \
        ["RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
         "RPL007"]
    assert all(rule["name"] and rule["description"] for rule in listed)


def test_explicit_paths_and_missing_path(tmp_path, capsys):
    root = _violating_repo(tmp_path)
    make_repo(tmp_path, {"src/repro/ok.py": "x = 1\n"})
    assert analysis_main(["--root", str(root), "src/repro/ok.py"]) == 0
    assert analysis_main(["--root", str(root), "src/repro/cli.py"]) == 1
    assert analysis_main(["--root", str(root), "no/such/file.py"]) == 2


def test_explicit_path_outside_root_is_a_usage_error(tmp_path, capsys):
    """An absolute path outside ``--root`` exits 2 with a message, not a
    traceback (the relpath computation cannot be asked to escape the root)."""
    root = _violating_repo(tmp_path / "repo")
    outside = tmp_path / "elsewhere" / "stray.py"
    outside.parent.mkdir(parents=True)
    outside.write_text("x = 1\n")
    assert analysis_main(["--root", str(root), str(outside)]) == 2
    assert "outside the analysis root" in capsys.readouterr().err


def test_syntax_errors_surface_as_rpl000(tmp_path):
    root = make_repo(tmp_path, {"src/repro/broken.py": "def f(:\n"})
    report = run_analysis(root)
    (finding,) = report.findings
    assert finding.code == "RPL000" and "does not parse" in finding.message


def test_non_repo_root_is_a_usage_error(tmp_path, capsys):
    assert analysis_main(["--root", str(tmp_path / "empty")]) == 2


def test_stale_baseline_entries_are_reported_not_fatal(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/fine.py": "x = 1\n"})
    (root / BASELINE_FILENAME).write_text(json.dumps(
        {"version": 1, "entries": {"RPL001|gone.py|old debt": 1}}))
    assert analysis_main(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entry" in out and "old debt" in out


def test_cli_lint_subcommand_forwards_to_the_engine(tmp_path, capsys):
    from repro.cli import main as cli_main

    root = _violating_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts_by_code"] == {"RPL001": 1}
    assert cli_main(["lint", "--list-rules"]) == 0


# ------------------------------------------------------------- acceptance

def test_repository_lints_clean_against_committed_baseline(capsys):
    """The repo at HEAD, with its committed baseline, has zero new findings —
    the same gate CI's lint job enforces."""
    assert (REPO_ROOT / "src" / "repro").is_dir()
    assert analysis_main(["--root", str(REPO_ROOT)]) == 0
    summary = capsys.readouterr().out
    assert "0 new finding(s)" in summary


def test_repository_has_recorded_debt_without_baseline(capsys):
    """The committed baseline is load-bearing: without it the benchmark debt
    fails the run (so the baseline cannot silently rot away)."""
    assert analysis_main(["--root", str(REPO_ROOT), "--no-baseline"]) == 1
