"""The ``repro.pool`` serving tier: pooled oracle, pre-warm file, front-end.

The transport conformance itself (bit-identity, error contract, stats shape)
runs in ``tests/test_oracle_protocol.py``, where ``"pool"`` is one of the
``TRANSPORTS``.  This file covers what is specific to the tier: the pooled
oracle's lifecycle and fan-out, the hot-key pre-warm sidecar (atomic save,
fail-soft load, ranked extraction from the session manager), and the
SO_REUSEPORT front-end's building blocks.
"""

import json
import os
import socket

import pytest

from repro.api import Oracle
from repro.errors import OracleClosedError, TransportError
from repro.pool import (PooledOracle, hot_keys_path, load_hot_fault_sets,
                        save_hot_fault_sets)
from repro.pool.frontend import _reserve_port, _worker_metrics_port
from repro.server.session_manager import SessionManager
from repro.workloads import GraphFamily, make_graph

MAX_FAULTS = 2


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12, seed=3, density=1.4)
    oracle = Oracle.build(graph, max_faults=MAX_FAULTS)
    path = tmp_path_factory.mktemp("pool") / "world.ftcs"
    path.write_bytes(oracle.to_snapshot_bytes())
    oracle.close()
    return path


@pytest.fixture(scope="module")
def world(snapshot_path):
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12, seed=3, density=1.4)
    reference = Oracle.load(snapshot_path)
    pool = Oracle.pool(snapshot_path, workers=2)
    try:
        yield graph, reference, pool
    finally:
        pool.close()
        reference.close()


# ------------------------------------------------------------ pooled oracle


def test_pool_requires_at_least_one_worker(snapshot_path):
    with pytest.raises(ValueError):
        PooledOracle(snapshot_path, workers=0)


def test_pool_validates_the_artifact_up_front(tmp_path):
    with pytest.raises(Exception):
        PooledOracle(tmp_path / "missing.ftcs", workers=1)


def test_pool_answers_match_the_snapshot_transport(world):
    graph, reference, pool = world
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    import random

    rng = random.Random(9)
    for _ in range(6):
        faults = rng.sample(edges, rng.randint(0, MAX_FAULTS))
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(10)]
        assert pool.connected_many(pairs, faults) == \
            reference.connected_many(pairs, faults)


def test_pool_batch_session_pins_faults_and_reports_structure(world):
    graph, reference, pool = world
    faults = sorted(graph.edges())[:MAX_FAULTS]
    vertices = sorted(graph.vertices())
    session = pool.batch_session(faults)
    ref_session = reference.batch_session(faults)
    assert session.num_components() == ref_session.num_components()
    assert session.num_fragments() == ref_session.num_fragments()
    pairs = [(vertices[0], vertices[-1]), (vertices[1], vertices[4])]
    assert session.connected_many(pairs) == \
        reference.connected_many(pairs, faults)


def test_pool_counts_queries_and_reports_workers(world):
    _, _, pool = world
    before = pool.queries_answered
    graph_vertices = sorted(make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12,
                                       seed=3, density=1.4).vertices())
    pool.connected_many([(graph_vertices[0], graph_vertices[1])], [])
    stats = pool.stats()
    assert stats.transport == "pool"
    assert stats.extra["pool"]["workers"] == 2
    assert pool.queries_answered == before + 1


def test_pool_close_is_idempotent_and_post_close_raises(snapshot_path):
    pool = Oracle.pool(snapshot_path, workers=1)
    vertices = sorted(make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12, seed=3,
                                 density=1.4).vertices())
    with pool:
        assert pool.connected(vertices[0], vertices[1], []) in (True, False)
    pool.close()  # second close must not raise
    with pytest.raises(OracleClosedError):
        pool.connected(vertices[0], vertices[1], [])
    # The post-close error is part of the shared transport hierarchy.
    with pytest.raises(TransportError):
        pool.batch_session([])


# ------------------------------------------------------------ pre-warm file


def test_hot_keys_path_sits_beside_the_snapshot():
    assert hot_keys_path("/data/net.ftcs") == "/data/net.ftcs.hotkeys.json"


def test_hot_fault_sets_round_trip(tmp_path):
    path = tmp_path / "net.ftcs.hotkeys.json"
    fault_sets = [[("a", "b"), ("c", "d")], [(1, 2)], []]
    assert save_hot_fault_sets(path, fault_sets) == 3
    loaded = load_hot_fault_sets(path)
    assert loaded == [[("a", "b"), ("c", "d")], [(1, 2)], []]


def test_save_hot_fault_sets_is_atomic(tmp_path):
    path = tmp_path / "net.ftcs.hotkeys.json"
    save_hot_fault_sets(path, [[("a", "b")]])
    assert not list(tmp_path.glob("*.tmp"))
    assert load_hot_fault_sets(path) == [[("a", "b")]]


@pytest.mark.parametrize("payload", [
    "not json at all",
    '"a json string"',
    '{"version": 999, "fault_sets": []}',
    '{"version": 1, "fault_sets": "nope"}',
    '{"version": 1, "fault_sets": [["not-an-edge"]]}',
    '{"version": 1, "fault_sets": [[["a", "b", "c"]]]}',
])
def test_load_hot_fault_sets_is_fail_soft(tmp_path, payload):
    path = tmp_path / "bad.hotkeys.json"
    path.write_text(payload)
    assert load_hot_fault_sets(path) == []


def test_load_hot_fault_sets_missing_file_is_empty(tmp_path):
    assert load_hot_fault_sets(tmp_path / "nope.json") == []


def test_session_manager_exposes_ranked_hot_fault_sets(world):
    _, reference, _ = world
    manager = SessionManager(reference)
    try:
        hot = [("a", "b")]
        cold = [("c", "d")]
        for _ in range(3):
            manager._record_hot_key(("hot",), hot)
        manager._record_hot_key(("cold",), cold)
        ranked = manager.hot_fault_sets()
        assert ranked[0] == hot
        assert ranked == [hot, cold]
        assert manager.hot_fault_sets(top=1) == [hot]
    finally:
        manager.close()


def test_hot_fault_sets_survive_a_json_round_trip(tmp_path, world):
    """What the server persists on shutdown is exactly what a restarted
    server can replay through ``prewarm_sessions``."""
    _, reference, _ = world
    manager = SessionManager(reference)
    try:
        graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12, seed=3,
                           density=1.4)
        faults = sorted(graph.edges())[:MAX_FAULTS]
        _, key = reference._fault_labels_keyed(faults)
        manager._record_hot_key(key, faults)
        path = tmp_path / "world.ftcs.hotkeys.json"
        save_hot_fault_sets(path, manager.hot_fault_sets())
        replay = load_hot_fault_sets(path)
        assert replay == [[tuple(edge) for edge in faults]]
        import asyncio

        warmed = asyncio.run(manager.prewarm_sessions(replay))
        assert warmed == 1
    finally:
        manager.close()


# ---------------------------------------------------------------- front-end


def test_reserve_port_resolves_an_ephemeral_port():
    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("platform without SO_REUSEPORT")
    reservation = _reserve_port("127.0.0.1", 0)
    try:
        host, port = reservation.getsockname()[:2]
        assert port > 0
        # A second SO_REUSEPORT bind of the same port must succeed — that is
        # the whole mechanism the worker fleet relies on.
        sibling = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sibling.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sibling.bind((host, port))
        sibling.close()
    finally:
        reservation.close()


def test_worker_metrics_port_mapping():
    assert _worker_metrics_port(None, 0) is None
    assert _worker_metrics_port(None, 3) is None
    assert _worker_metrics_port(0, 0) == 0
    assert _worker_metrics_port(0, 5) == 0
    assert _worker_metrics_port(9100, 0) == 9100
    assert _worker_metrics_port(9100, 2) == 9102


def test_run_pooled_server_rejects_bad_arguments(snapshot_path):
    from repro.pool import run_pooled_server

    with pytest.raises(ValueError):
        run_pooled_server(str(snapshot_path), workers=0)
    with pytest.raises(FileNotFoundError):
        run_pooled_server(str(snapshot_path) + ".missing", workers=1)


@pytest.mark.skipif(not hasattr(socket, "SO_REUSEPORT"),
                    reason="platform without SO_REUSEPORT")
def test_fleet_serves_and_shuts_down_cleanly(snapshot_path, tmp_path):
    """End-to-end: a 2-worker fleet answers like the snapshot transport and
    dies cleanly on SIGTERM, leaving the hot-key sidecar behind."""
    import signal
    import subprocess
    import sys
    import time

    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=12, seed=3, density=1.4)
    vertices = sorted(graph.vertices())
    edges = sorted(graph.edges())
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--snapshot", str(snapshot_path), "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    try:
        # Tracing spans from the workers share stdout with the announce
        # line, so scan for the "serving" event rather than trusting the
        # first line.
        event = None
        for line in process.stdout:
            try:
                candidate = json.loads(line)
            except ValueError:
                continue
            if candidate.get("event") == "serving":
                event = candidate
                break
        assert event is not None, "fleet exited before announcing readiness"
        assert event["workers"] == 2
        remote = Oracle.connect(event["host"], event["port"])
        reference = Oracle.load(snapshot_path)
        try:
            faults = edges[:MAX_FAULTS]
            pairs = [(vertices[0], vertices[-1]), (vertices[2], vertices[5])]
            assert remote.connected_many(pairs, faults) == \
                reference.connected_many(pairs, faults)
        finally:
            remote.close()
            reference.close()
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        sidecar = hot_keys_path(snapshot_path)
        deadline = time.monotonic() + 5
        while not os.path.exists(sidecar) and time.monotonic() < deadline:
            time.sleep(0.1)
        assert load_hot_fault_sets(sidecar) == [[tuple(e) for e in faults]]
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
