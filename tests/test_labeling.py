"""Tests for the ancestry labeling scheme and the edge-identifier codec."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, bfs_spanning_tree, dfs_spanning_tree
from repro.labeling import AncestryLabel, AncestryLabeling, EdgeIdCodec, ancestry_relation


def sample_tree(n=15, seed=3):
    nx_tree = nx.random_labeled_tree(n, seed=seed)
    graph = Graph.from_networkx(nx_tree)
    return bfs_spanning_tree(graph, 0)


# ----------------------------------------------------------------- ancestry

def test_ancestry_matches_tree_ground_truth():
    tree = sample_tree()
    labeling = AncestryLabeling(tree)
    for u in tree.vertices():
        for v in tree.vertices():
            expected = tree.is_ancestor(u, v)
            assert labeling.is_ancestor(u, v) == expected


def test_ancestry_relation_decoder():
    tree = sample_tree(n=10, seed=5)
    labeling = AncestryLabeling(tree)
    for u in tree.vertices():
        for v in tree.vertices():
            relation = ancestry_relation(labeling.label(u), labeling.label(v))
            if u == v:
                assert relation == 0
            elif tree.is_ancestor(u, v):
                assert relation == 1
            elif tree.is_ancestor(v, u):
                assert relation == -1
            else:
                assert relation == 0


def test_ancestry_labels_unique_and_bounded():
    tree = sample_tree(n=30, seed=11)
    labeling = AncestryLabeling(tree)
    labels = list(labeling.labels().values())
    assert len({(l.pre, l.post) for l in labels}) == tree.num_vertices()
    bound = labeling.max_value()
    for label in labels:
        assert 0 <= label.pre < bound
        assert 0 <= label.post < bound
        assert label.pre < label.post
    # O(log n) bits: generously, at most 2 * ceil(log2(2n)) + 2.
    assert labeling.max_bit_size() <= 2 * (bound.bit_length() + 1)


def test_ancestry_label_pack_unpack():
    label = AncestryLabel(pre=13, post=57)
    packed = label.pack(100)
    assert AncestryLabel.unpack(packed, 100) == label


def test_ancestry_dfs_vs_bfs_trees_consistent():
    nx_graph = nx.erdos_renyi_graph(25, 0.2, seed=2)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.path_graph(25)
    graph = Graph.from_networkx(nx_graph)
    for builder in (bfs_spanning_tree, dfs_spanning_tree):
        tree = builder(graph, 0)
        labeling = AncestryLabeling(tree)
        for vertex in tree.vertices():
            assert labeling.is_ancestor(0, vertex)


# ------------------------------------------------------------ edge-id codec

@pytest.mark.parametrize("mode", ["compact", "full"])
def test_edge_id_roundtrip(mode):
    codec = EdgeIdCodec(max_label_value=64, mode=mode)
    label_u = AncestryLabel(pre=10, post=20)
    label_v = AncestryLabel(pre=33, post=40)
    identifier = codec.encode(label_u, label_v)
    assert identifier > 0
    assert codec.field.contains(identifier)
    assert codec.endpoint_preorders(identifier) == (10, 33)
    if mode == "full":
        assert codec.decode(identifier) == (label_u, label_v)


@pytest.mark.parametrize("mode", ["compact", "full"])
def test_edge_id_injective(mode):
    codec = EdgeIdCodec(max_label_value=12, mode=mode)
    seen = set()
    for pre_u in range(0, 12, 3):
        for pre_v in range(0, 12, 3):
            identifier = codec.encode(AncestryLabel(pre_u, 11), AncestryLabel(pre_v, 11))
            assert identifier not in seen
            seen.add(identifier)


def test_edge_id_rejects_out_of_range():
    codec = EdgeIdCodec(max_label_value=16)
    with pytest.raises(ValueError):
        codec.encode(AncestryLabel(20, 5), AncestryLabel(1, 2))


def test_edge_id_plausibility():
    codec = EdgeIdCodec(max_label_value=8, mode="compact")
    identifier = codec.encode(AncestryLabel(3, 4), AncestryLabel(5, 6))
    assert codec.is_plausible(identifier)
    assert not codec.is_plausible(0)
    assert not codec.is_plausible(codec.field.order + 5)


def test_edge_id_rejects_unknown_mode():
    with pytest.raises(ValueError):
        EdgeIdCodec(max_label_value=8, mode="mystery")


@settings(max_examples=50, deadline=None)
@given(pre_u=st.integers(min_value=0, max_value=199),
       pre_v=st.integers(min_value=0, max_value=199),
       post_u=st.integers(min_value=0, max_value=199),
       post_v=st.integers(min_value=0, max_value=199))
def test_edge_id_roundtrip_property(pre_u, pre_v, post_u, post_v):
    codec = EdgeIdCodec(max_label_value=200, mode="full")
    identifier = codec.encode(AncestryLabel(pre_u, post_u), AncestryLabel(pre_v, post_v))
    decoded_u, decoded_v = codec.decode(identifier)
    assert (decoded_u.pre, decoded_u.post) == (pre_u, post_u)
    assert (decoded_v.pre, decoded_v.post) == (pre_v, post_v)
