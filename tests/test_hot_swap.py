"""Tests for zero-downtime hot swap of the serving oracle.

The swap contract, in order of importance:

1. **Bit-identity** — answers before a swap equal the old snapshot's oracle,
   answers after equal the new snapshot's; never a blend.
2. **Zero dropped connections** — one client connection spans the whole
   reload; the server never resets it.
3. **Authenticated, pinned** — the ``reload`` wire op needs the configured
   token, and its optional ``path`` cannot point the server at a different
   file.  SIGHUP (local authority) needs no token.
4. **Fail closed** — a corrupt or missing snapshot file leaves the old
   oracle serving and answers ``reload-failed``.
5. **Lease discipline** — an in-flight request keeps the retired oracle
   alive until it drains; the swap closes it exactly once afterwards.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import Oracle
from repro.server import AsyncQueryClient, QueryServer, ServerError
from repro.workloads import GraphFamily, make_graph

MAX_FAULTS = 2


def _build_worlds():
    """Two snapshots over different graphs + queries valid on both."""
    graph_a = make_graph(GraphFamily.ERDOS_RENYI, n=24, seed=5)
    graph_b = make_graph(GraphFamily.ERDOS_RENYI, n=24, seed=6)
    bytes_a = Oracle.build(graph_a, max_faults=MAX_FAULTS).to_snapshot_bytes()
    bytes_b = Oracle.build(graph_b, max_faults=MAX_FAULTS).to_snapshot_bytes()
    shared = sorted(set(tuple(sorted(e)) for e in graph_a.edges()) &
                    set(tuple(sorted(e)) for e in graph_b.edges()))
    faults = [shared[0]]
    pairs = [(0, 11), (3, 19), (7, 15), (2, 22)]
    return bytes_a, bytes_b, faults, pairs


@pytest.fixture(scope="module")
def worlds():
    return _build_worlds()


@pytest.fixture
def served(tmp_path, worlds):
    bytes_a, _, _, _ = worlds
    path = tmp_path / "serving.ftcs"
    path.write_bytes(bytes_a)
    return path


def _run(coroutine):
    return asyncio.run(coroutine)


async def _start(path, **kwargs):
    server = QueryServer(Oracle.load(str(path)), port=0,
                         snapshot_path=str(path), **kwargs)
    await server.start()
    return server


# ----------------------------------------------------------------- wire op

def test_reload_swaps_and_answers_are_bit_identical(served, worlds):
    bytes_a, bytes_b, faults, pairs = worlds

    async def scenario():
        server = await _start(served, reload_token="hunter2")
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                before = await client.connected_many(pairs, faults)
                stats = await client.stats()
                assert stats["server"]["snapshot_epoch"] == 0
                served.write_bytes(bytes_b)
                report = await client.reload("hunter2", path=str(served))
                assert report["reloaded"] is True
                assert report["epoch"] == 1
                assert report["source"] == "wire"
                # Same connection, next request: the new snapshot answers.
                after = await client.connected_many(pairs, faults)
                stats = await client.stats()
                assert stats["server"]["snapshot_epoch"] == 1
            finally:
                await client.close()
        finally:
            await server.close()
        return before, after

    before, after = _run(scenario())
    assert before == Oracle.load(bytes_a).connected_many(pairs, faults)
    assert after == Oracle.load(bytes_b).connected_many(pairs, faults)


def test_reload_requires_the_configured_token(served):
    async def scenario():
        server = await _start(served, reload_token="hunter2")
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                with pytest.raises(ServerError) as excinfo:
                    await client.reload("wrong")
                assert excinfo.value.code == "reload-forbidden"
                with pytest.raises(ServerError) as excinfo:
                    await client.reload("hunter2", path="/somewhere/else.ftcs")
                assert excinfo.value.code == "reload-forbidden"
                # The connection survives both rejections.
                assert (await client.ping())["protocol"] >= 1
            finally:
                await client.close()
        finally:
            await server.close()

    _run(scenario())


def test_reload_op_disabled_without_a_token(served):
    async def scenario():
        server = await _start(served)  # snapshot_path set, but no token
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                with pytest.raises(ServerError) as excinfo:
                    await client.reload("anything")
                assert excinfo.value.code == "reload-forbidden"
            finally:
                await client.close()
        finally:
            await server.close()

    _run(scenario())


def test_failed_reload_keeps_the_old_oracle_serving(served, worlds):
    bytes_a, _, faults, pairs = worlds

    async def scenario():
        server = await _start(served, reload_token="hunter2")
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                served.write_bytes(b"not a snapshot at all")
                with pytest.raises(ServerError) as excinfo:
                    await client.reload("hunter2")
                assert excinfo.value.code == "reload-failed"
                answers = await client.connected_many(pairs, faults)
                stats = await client.stats()
                assert stats["server"]["snapshot_epoch"] == 0
            finally:
                await client.close()
        finally:
            await server.close()
        return answers

    answers = _run(scenario())
    assert answers == Oracle.load(bytes_a).connected_many(pairs, faults)


def test_reload_without_snapshot_path_fails_closed(worlds):
    bytes_a = worlds[0]

    async def scenario():
        server = QueryServer(Oracle.load(bytes_a), port=0,
                             reload_token="hunter2")  # no snapshot_path
        await server.start()
        try:
            client = await AsyncQueryClient.connect(server.host, server.port)
            try:
                with pytest.raises(ServerError) as excinfo:
                    await client.reload("hunter2")
                assert excinfo.value.code == "reload-failed"
            finally:
                await client.close()
        finally:
            await server.close()

    _run(scenario())


# ------------------------------------------------------------------ leases

def test_inflight_requests_pin_the_old_epoch(served, worlds):
    """A request that acquired the old oracle finishes on it even when the
    swap lands mid-request, and the retired oracle is closed exactly once
    after the last lease drains."""
    _, bytes_b, faults, pairs = worlds

    async def scenario():
        server = await _start(served, reload_token="hunter2")
        try:
            old_oracle = server.oracle
            oracle, epoch = server.sessions._acquire_oracle()
            assert (oracle, epoch) == (old_oracle, 0)
            served.write_bytes(bytes_b)
            await server.reload_snapshot(source="wire")
            # The old oracle is retired, not closed: our lease pins it.
            assert server.oracle is not old_oracle
            assert 0 in server.sessions._retired
            assert old_oracle.connected_many(pairs, faults)  # still usable
            server.sessions._release_oracle(0)
            assert 0 not in server.sessions._retired
            # Closed: its session cache is gone (close() drops sessions).
            assert server.sessions.epoch == 1
        finally:
            await server.close()

    _run(scenario())


def test_concurrent_load_across_a_swap_never_blends(served, worlds):
    """Many clients querying while the swap lands: every response equals the
    old snapshot's answer or the new one's — on these queries the two
    snapshots agree, so any blend or drop surfaces as a mismatch."""
    bytes_a, bytes_b, faults, pairs = worlds
    expected_a = Oracle.load(bytes_a).connected_many(pairs, faults)
    expected_b = Oracle.load(bytes_b).connected_many(pairs, faults)

    async def scenario():
        server = await _start(served, reload_token="hunter2")
        try:
            clients = [await AsyncQueryClient.connect(server.host, server.port)
                       for _ in range(4)]
            control = await AsyncQueryClient.connect(server.host, server.port)
            clients.append(control)
            try:
                async def hammer(client):
                    results = []
                    for _ in range(12):
                        results.append(
                            await client.connected_many(pairs, faults))
                    return results

                async def swap():
                    await asyncio.sleep(0.01)
                    served.write_bytes(bytes_b)
                    return await control.reload("hunter2")

                all_results = await asyncio.gather(
                    *[hammer(client) for client in clients[:-1]], swap())
            finally:
                for client in clients:
                    await client.close()
        finally:
            await server.close()
        return all_results

    *hammered, report = _run(scenario())
    assert report["reloaded"] is True
    for results in hammered:
        for answers in results:
            assert answers in (expected_a, expected_b)


# ------------------------------------------------------------------ SIGHUP

@pytest.mark.skipif(not hasattr(signal, "SIGHUP"),
                    reason="platform without SIGHUP")
def test_sighup_reloads_a_serving_process(tmp_path, worlds):
    """``repro serve`` + SIGHUP: the running process swaps onto the
    rewritten snapshot file with the same client connection open."""
    bytes_a, bytes_b, faults, pairs = worlds
    path = tmp_path / "serving.ftcs"
    path.write_bytes(bytes_a)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--snapshot", str(path), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    try:
        event = None
        for line in process.stdout:
            try:
                candidate = json.loads(line)
            except ValueError:
                continue
            if candidate.get("event") == "serving":
                event = candidate
                break
        assert event is not None, "server exited before announcing readiness"
        remote = Oracle.connect(event["host"], event["port"])
        try:
            before = remote.connected_many(pairs, faults)
            assert before == Oracle.load(bytes_a).connected_many(pairs, faults)
            path.write_bytes(bytes_b)
            process.send_signal(signal.SIGHUP)
            # The reload announce line confirms the swap landed.
            deadline = time.monotonic() + 30
            reloaded = None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                try:
                    candidate = json.loads(line)
                except ValueError:
                    continue
                if candidate.get("event") in ("reloaded", "reload-failed"):
                    reloaded = candidate
                    break
            assert reloaded is not None and reloaded["event"] == "reloaded", \
                reloaded
            assert reloaded["epoch"] == 1
            after = remote.connected_many(pairs, faults)
            assert after == Oracle.load(bytes_b).connected_many(pairs, faults)
        finally:
            remote.close()
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
