"""Tests for the observability seam (:mod:`repro.obs`).

The layer's contracts, in order of importance:

1. **Histogram math** — bucket boundaries are ``le``-inclusive, quantiles
   interpolate linearly inside the crossing bucket, merging is element-wise
   and only between congruent histograms.
2. **Exposition format** — ``# HELP`` / ``# TYPE`` headers, ``_total`` on
   counters, cumulative ``_bucket{le=...}`` + ``_sum`` + ``_count`` on
   histograms, correct label escaping.
3. **Tracing semantics** — span nesting propagates trace ids through
   contextvars, explicit ids win, errors are recorded and re-raised, the
   contextvars are restored on exit, and emission never replaces the span's
   real exception.
4. **Determinism** — nothing in this package feeds entropy or state into a
   build or query path (asserted end-to-end in test_obs_build below and in
   test_server.py's tracing tests).
"""

import json
import logging
import threading
import tracemalloc

import pytest

from repro import obs
from repro.obs import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry, PeakMemoryMeter, Tracer,
                       current_span_id, current_trace_id, log_buckets)
from repro.obs.prometheus import (escape_label_value, render_labels,
                                  render_stats_tree, sanitize_metric_name)


# ------------------------------------------------------------------ buckets

def test_log_buckets_are_log_spaced():
    bounds = log_buckets(0.001, 10.0, 4)
    assert bounds == pytest.approx((0.001, 0.01, 0.1, 1.0))


@pytest.mark.parametrize("start,factor,count", [
    (0.0, 2.0, 3), (-1.0, 2.0, 3), (float("inf"), 2.0, 3),
    (1.0, 1.0, 3), (1.0, 0.5, 3), (1.0, float("nan"), 3),
    (1.0, 2.0, 0), (1e300, 10.0, 20),
])
def test_log_buckets_rejects_bad_geometry(start, factor, count):
    with pytest.raises(ValueError):
        log_buckets(start, factor, count)


def test_default_latency_buckets_cover_microseconds_to_seconds():
    assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(5e-05)
    assert DEFAULT_LATENCY_BUCKETS[-1] > 5.0
    assert len(DEFAULT_LATENCY_BUCKETS) == 18


# ---------------------------------------------------------------- histogram

def test_histogram_boundary_values_are_le_inclusive():
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    for value in (1.0, 2.0, 4.0, 5.0, 0.5):
        hist.observe(value)
    snap = hist.child()
    # Exact bounds land in their own bucket (le is inclusive); 5.0 overflows.
    assert snap.counts == (2, 1, 1, 1)
    assert snap.count == 5
    assert snap.total == pytest.approx(12.5)
    assert snap.max_value == 5.0


def test_histogram_quantile_interpolates_within_the_crossing_bucket():
    hist = Histogram("h", buckets=(10.0, 20.0, 30.0, 40.0))
    for _ in range(10):
        hist.observe(5.0)    # bucket (0, 10]
    for _ in range(10):
        hist.observe(15.0)   # bucket (10, 20]
    # Rank 10 of 20 is exactly the first bucket's upper edge...
    assert hist.quantile(0.5) == pytest.approx(10.0)
    # ...and rank 15 sits halfway through the second bucket.
    assert hist.quantile(0.75) == pytest.approx(15.0)
    assert hist.quantile(0.0) == pytest.approx(0.0)
    assert hist.quantile(1.0) == pytest.approx(20.0)


def test_histogram_quantile_clamps_overflow_bucket_to_observed_max():
    hist = Histogram("h", buckets=(1.0,))
    hist.observe(7.5)
    assert hist.quantile(0.99) <= 7.5
    assert hist.quantile(1.0) == pytest.approx(7.5)


def test_histogram_quantile_on_empty_child_is_zero():
    hist = Histogram("h", buckets=(1.0, 2.0))
    assert hist.quantile(0.5) == 0.0


@pytest.mark.parametrize("q", [-0.1, 1.5])
def test_histogram_quantile_rejects_out_of_range(q):
    hist = Histogram("h", buckets=(1.0,))
    with pytest.raises(ValueError):
        hist.quantile(q)


def test_histogram_rejects_nan_and_bad_buckets():
    hist = Histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        hist.observe(float("nan"))
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, float("inf")))
    with pytest.raises(ValueError):
        Histogram("h", labelnames=("le",))


def test_histogram_merge_is_element_wise():
    left = Histogram("h", labelnames=("op",), buckets=(1.0, 2.0))
    right = Histogram("h", labelnames=("op",), buckets=(1.0, 2.0))
    left.observe(0.5, op="a")
    right.observe(1.5, op="a")
    right.observe(9.0, op="b")
    left.merge(right)
    merged = left.child(op="a")
    assert merged.counts == (1, 1, 0)
    assert merged.count == 2
    assert merged.total == pytest.approx(2.0)
    assert left.child(op="b").max_value == 9.0
    # The source histogram is untouched.
    assert right.child(op="a").count == 1
    # Self-merge is a no-op, not a doubling.
    left.merge(left)
    assert left.child(op="a").count == 2


def test_histogram_merge_requires_congruent_shape():
    base = Histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        base.merge(Histogram("h", buckets=(1.0, 3.0)))
    with pytest.raises(ValueError):
        base.merge(Histogram("h", labelnames=("op",), buckets=(1.0, 2.0)))


# ---------------------------------------------------------- counters/gauges

def test_counter_is_monotone_and_label_checked():
    counter = Counter("c", labelnames=("op",))
    counter.inc(op="ping")
    counter.inc(2.0, op="ping")
    assert counter.value(op="ping") == pytest.approx(3.0)
    assert counter.total() == pytest.approx(3.0)
    with pytest.raises(ValueError):
        counter.inc(-1.0, op="ping")
    with pytest.raises(ValueError):
        counter.inc()  # missing the registered label
    with pytest.raises(ValueError):
        counter.inc(op="ping", extra="nope")


def test_gauge_dec_floor_clamps():
    gauge = Gauge("g")
    gauge.inc()
    gauge.dec(floor=0.0)
    gauge.dec(floor=0.0)  # the double-close: must clamp, not go negative
    assert gauge.value() == 0.0
    gauge.dec()  # no floor: free-running
    assert gauge.value() == -1.0
    gauge.set(7)
    assert gauge.value() == 7.0


@pytest.mark.parametrize("name", ["", "2fast", "has space", "dash-ed"])
def test_metric_names_are_validated(name):
    with pytest.raises(ValueError):
        Counter(name)


def test_label_names_are_validated():
    with pytest.raises(ValueError):
        Counter("c", labelnames=("__reserved",))
    with pytest.raises(ValueError):
        Counter("c", labelnames=("op", "op"))


# ----------------------------------------------------------------- registry

def test_registry_get_or_create_returns_the_same_metric():
    registry = MetricsRegistry()
    first = registry.counter("requests", "help", ("op",))
    second = registry.counter("requests", "help", ("op",))
    assert first is second
    assert registry.get("requests") is first


def test_registry_rejects_kind_label_and_bucket_mismatches():
    registry = MetricsRegistry()
    registry.counter("requests", labelnames=("op",))
    with pytest.raises(ValueError):
        registry.gauge("requests")
    with pytest.raises(ValueError):
        registry.counter("requests", labelnames=("code",))
    registry.histogram("latency", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("latency", buckets=(1.0, 3.0))


def test_registry_snapshot_is_json_ready():
    registry = MetricsRegistry()
    registry.counter("requests", labelnames=("op",)).inc(op="ping")
    registry.histogram("latency", buckets=(1.0,)).observe(0.5)
    snapshot = json.loads(json.dumps(registry.snapshot()))
    assert snapshot["requests"]["samples"] == [
        {"labels": {"op": "ping"}, "value": 1.0}]
    hist = snapshot["latency"]["samples"][0]
    assert hist["count"] == 1
    assert hist["buckets"]["1.0"] == 1
    assert hist["buckets"]["+Inf"] == 1


def test_registry_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("requests", "Requests handled", ("op",)).inc(op="ping")
    registry.gauge("active", "Open connections").set(2)
    hist = registry.histogram("latency", "Latency", ("op",),
                              buckets=(1.0, 2.0))
    hist.observe(0.5, op="ping")
    hist.observe(1.5, op="ping")
    hist.observe(9.0, op="ping")
    text = registry.to_prometheus()
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# HELP repro_requests_total Requests handled" in lines
    assert "# TYPE repro_requests_total counter" in lines
    assert 'repro_requests_total{op="ping"} 1' in lines
    assert "# TYPE repro_active gauge" in lines
    assert "repro_active 2" in lines
    assert "# TYPE repro_latency histogram" in lines
    # Cumulative buckets, closed by +Inf == _count.
    assert 'repro_latency_bucket{op="ping",le="1.0"} 1' in lines
    assert 'repro_latency_bucket{op="ping",le="2.0"} 2' in lines
    assert 'repro_latency_bucket{op="ping",le="+Inf"} 3' in lines
    assert 'repro_latency_sum{op="ping"} 11.0' in lines
    assert 'repro_latency_count{op="ping"} 3' in lines
    # Families render sorted by name: headers appear in lexical order.
    headers = [line for line in lines if line.startswith("# TYPE")]
    assert headers == sorted(headers)


def test_prometheus_helpers_escape_and_sanitize():
    assert sanitize_metric_name(("repro", "a-b c")) == "repro_a_b_c"
    assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'
    assert render_labels([("op", "ping"), ("code", "x")]) == \
        '{op="ping",code="x"}'
    assert render_labels([]) == ""


def test_render_stats_tree_flattens_by_label_convention():
    lines = render_stats_tree({
        "server": {"requests_by_op": {"ping": 2, "stats": 1},
                   "inflight": 0,
                   "note": "skipped (non-numeric)"},
    })
    assert "# TYPE repro_server_requests gauge" in lines
    assert 'repro_server_requests{op="ping"} 2' in lines
    assert "repro_server_inflight 0" in lines
    assert not any("note" in line for line in lines)


def test_metrics_are_thread_safe_under_hammer():
    registry = MetricsRegistry()
    counter = registry.counter("c", labelnames=("op",))
    hist = registry.histogram("h", buckets=(0.5, 1.0))
    rounds = 200

    def hammer(op):
        for index in range(rounds):
            counter.inc(op=op)
            hist.observe((index % 3) * 0.4)

    threads = [threading.Thread(target=hammer, args=("op%d" % i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.total() == 4 * rounds
    assert hist.child().count == 4 * rounds


# ------------------------------------------------------------------ tracing

def test_span_emits_structured_event_to_sink():
    events = []
    tracer = Tracer(service="test", sink=events.append)
    with tracer.span("work", pairs=3) as span:
        span.annotate(faults=2)
    (event,) = events
    assert event["event"] == "span"
    assert event["service"] == "test"
    assert event["name"] == "work"
    assert event["attrs"] == {"pairs": 3, "faults": 2}
    assert event["duration_ms"] >= 0.0
    assert len(event["trace_id"]) == 32
    assert len(event["span_id"]) == 16
    assert "error" not in event
    assert tracer.counts() == {"spans_emitted": 1, "slow_spans": 0}


def test_nested_spans_share_the_trace_and_chain_parents():
    events = []
    tracer = Tracer(sink=events.append)
    with tracer.span("outer") as outer:
        assert current_trace_id() == outer.trace_id
        assert current_span_id() == outer.span_id
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    # Contextvars are restored after exit (inner first, then outer).
    assert current_trace_id() is None
    assert current_span_id() is None
    assert [event["name"] for event in events] == ["inner", "outer"]


def test_explicit_trace_id_wins_over_ambient():
    events = []
    tracer = Tracer(sink=events.append)
    with tracer.span("outer"):
        with tracer.span("pinned", trace_id="client-supplied-id") as span:
            assert span.trace_id == "client-supplied-id"
            assert current_trace_id() == "client-supplied-id"


def test_span_records_error_type_and_reraises():
    events = []
    tracer = Tracer(sink=events.append)
    with pytest.raises(KeyError):
        with tracer.span("broken"):
            raise KeyError("nope")
    assert events[0]["error"] == "KeyError"
    assert current_trace_id() is None  # cleaned up despite the raise


def test_slow_threshold_marks_spans():
    events = []
    tracer = Tracer(sink=events.append, slow_seconds=0.0)
    with tracer.span("anything"):
        pass
    assert events[0]["slow"] is True
    assert tracer.counts()["slow_spans"] == 1
    with pytest.raises(ValueError):
        Tracer(slow_seconds=-1.0)


def test_broken_sink_does_not_replace_the_real_exception():
    def explode(event):
        raise RuntimeError("sink is broken")

    tracer = Tracer(sink=explode)
    with pytest.raises(KeyError):  # not RuntimeError
        with tracer.span("work"):
            raise KeyError("the real failure")


def test_disabled_tracer_is_inert():
    events = []
    tracer = Tracer(sink=events.append, enabled=False)
    with tracer.span("work") as span:
        assert span.name == "work"
    assert events == []
    assert tracer.counts() == {"spans_emitted": 0, "slow_spans": 0}


def test_default_tracer_logs_json_events(caplog):
    with caplog.at_level(logging.INFO, logger="repro.obs.trace"):
        with obs.span("default-path"):
            pass
    event = json.loads(caplog.records[-1].message)
    assert event["name"] == "default-path"


# ------------------------------------------------------------- peak memory

def test_peak_memory_meter_uses_rss_when_not_tracing():
    if tracemalloc.is_tracing():  # pragma: no cover - -X tracemalloc runs
        pytest.skip("interpreter started with tracemalloc enabled")
    meter = PeakMemoryMeter()
    assert meter.probe in ("rss", "unavailable")
    meter.start_phase()
    peak = meter.end_phase()
    if meter.probe == "rss":
        assert peak is not None and peak > 0
    else:  # pragma: no cover - non-POSIX platforms
        assert peak is None


def test_peak_memory_meter_resets_per_phase_under_tracemalloc():
    tracemalloc.start()
    try:
        meter = PeakMemoryMeter()
        assert meter.probe == "tracemalloc"
        meter.start_phase()
        blob = bytearray(1 << 20)
        first = meter.end_phase()
        del blob
        meter.start_phase()
        second = meter.end_phase()
        assert first is not None and first >= (1 << 20)
        # The reset makes phases independent: the idle phase reports far
        # less than the allocating one (this is what RSS cannot do).
        assert second is not None and second < first
    finally:
        tracemalloc.stop()


def test_span_captures_peak_memory_when_asked():
    events = []
    tracer = Tracer(sink=events.append, capture_memory=True)
    with tracer.span("alloc"):
        data = list(range(1000))
        del data
    assert events[0].get("peak_memory_bytes", 0) >= 0
