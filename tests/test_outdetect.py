"""Tests for the outdetect labeling schemes (RS threshold, layered, sketch)."""

import itertools

import networkx as nx
import pytest

from repro.gf2 import GF2m
from repro.graphs import EulerTour, Graph, bfs_spanning_tree, canonical_edge
from repro.graphs.spanning_tree import non_tree_edges
from repro.hierarchy import HierarchyConfig, build_deterministic_hierarchy
from repro.outdetect import (LayeredOutdetect, OutdetectDecodeError, RSThresholdOutdetect,
                             SketchOutdetect)


def line_graph_scheme(field_width=16, threshold=3, adaptive=True):
    """A path 0-1-2-3-4 plus chords, with simple integer edge ids."""
    graph = Graph()
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3), (2, 4), (0, 4)]
    for u, v in edges:
        graph.add_edge(u, v)
    field = GF2m(field_width)
    edge_ids = {canonical_edge(u, v): index + 1 for index, (u, v) in enumerate(sorted(graph.edges()))}
    scheme = RSThresholdOutdetect(field, threshold, graph.vertices(), edge_ids, adaptive=adaptive)
    return graph, scheme, edge_ids


# ------------------------------------------------------------------ RS threshold

def test_rs_outdetect_single_vertex():
    graph, scheme, edge_ids = line_graph_scheme()
    for vertex in graph.vertices():
        incident = {edge_ids[canonical_edge(vertex, w)] for w in graph.neighbors(vertex)}
        if len(incident) <= scheme.threshold:
            assert set(scheme.decode(scheme.label_of(vertex))) == incident


def test_rs_outdetect_vertex_sets():
    graph, scheme, edge_ids = line_graph_scheme(threshold=4)
    for size in (2, 3):
        for subset in itertools.combinations(sorted(graph.vertices()), size):
            vertex_set = set(subset)
            outgoing = {edge_ids[canonical_edge(u, v)] for u, v in graph.edges()
                        if (u in vertex_set) != (v in vertex_set)}
            combined = scheme.label_of_set(vertex_set)
            if len(outgoing) <= scheme.threshold:
                assert set(scheme.decode(combined)) == outgoing


def test_rs_outdetect_whole_graph_is_zero():
    graph, scheme, _ = line_graph_scheme()
    combined = scheme.label_of_set(graph.vertices())
    assert combined == scheme.zero_label()
    assert scheme.decode(combined) == []


def test_rs_outdetect_label_bits():
    _, scheme, _ = line_graph_scheme(field_width=16, threshold=3)
    assert scheme.label_bit_size(scheme.zero_label()) == 2 * 3 * 16


def test_rs_outdetect_overfull_is_unspecified_but_safe():
    """Proposition 2: above the threshold the output is unspecified.

    The decoder must either detect the inconsistency (raise) or return some
    list without crashing; it must never be trusted blindly, which is why the
    layered scheme only queries levels whose cut fits under the threshold.
    """
    graph, scheme, _ = line_graph_scheme(threshold=1, adaptive=False)
    # Vertex 2 has 4 incident edges > threshold 1.
    try:
        result = scheme.decode(scheme.label_of(2))
    except OutdetectDecodeError:
        return
    assert isinstance(result, list)


def test_rs_outdetect_rejects_unknown_endpoint():
    field = GF2m(12)
    with pytest.raises(KeyError):
        RSThresholdOutdetect(field, 2, [0, 1], {canonical_edge(0, 5): 3})


def test_rs_outdetect_syndrome_of_edge_set():
    graph, scheme, edge_ids = line_graph_scheme(threshold=4)
    subset = {0, 1}
    outgoing = [(u, v) for u, v in graph.edges() if (u in subset) != (v in subset)]
    assert scheme.syndrome_of_edge_set(outgoing) == scheme.label_of_set(subset)


# ----------------------------------------------------------------------- layered

def build_layered(n=20, m=45, f=2, seed=1):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.2, seed=seed)
    graph = Graph.from_networkx(nx_graph)
    tree = bfs_spanning_tree(graph, 0)
    tour = EulerTour(tree)
    extra = non_tree_edges(graph, tree)
    field = GF2m(20)
    edge_ids = {edge: index + 1 for index, edge in enumerate(extra)}
    hierarchy = build_deterministic_hierarchy(extra, tour, HierarchyConfig(max_faults=f))
    levels = []
    for level_edges, threshold in zip(hierarchy.levels, hierarchy.thresholds):
        ids = {edge: edge_ids[edge] for edge in level_edges}
        levels.append(RSThresholdOutdetect(field, threshold, graph.vertices(), ids))
    scheme = LayeredOutdetect(levels)
    return graph, tree, extra, edge_ids, scheme


def test_layered_outdetect_decodes_outgoing_edges():
    graph, tree, extra, edge_ids, scheme = build_layered()
    # Vertex sets arising from removing tree edges (the sets the decoder uses).
    tree_edges = tree.tree_edges()
    for fault in tree_edges[:8]:
        lower = tree.lower_endpoint(*fault)
        vertex_set = set(tree.subtree_vertices(lower))
        outgoing = {edge_ids[e] for e in extra
                    if (e[0] in vertex_set) != (e[1] in vertex_set)}
        combined = scheme.label_of_set(vertex_set)
        decoded = set(scheme.decode(combined))
        if not outgoing:
            assert decoded == set()
        else:
            assert decoded
            assert decoded.issubset(outgoing)


def test_layered_outdetect_empty_cut_returns_empty():
    graph, tree, extra, edge_ids, scheme = build_layered()
    combined = scheme.label_of_set(set(graph.vertices()))
    assert scheme.decode(combined) == []


def test_layered_requires_levels():
    with pytest.raises(ValueError):
        LayeredOutdetect([])


def test_layered_label_bits_additive():
    _, _, _, _, scheme = build_layered()
    label = scheme.zero_label()
    assert scheme.label_bit_size(label) == sum(
        level.label_bit_size(part) for level, part in zip(scheme.level_schemes, label))


def test_layered_combine_depth_mismatch():
    _, _, _, _, scheme = build_layered()
    with pytest.raises(ValueError):
        scheme.combine(scheme.zero_label(), scheme.zero_label()[:-1] if scheme.depth() > 1
                       else tuple())


# ------------------------------------------------------------------------ sketch

def test_sketch_outdetect_finds_outgoing_edge():
    graph, _, edge_ids = line_graph_scheme()
    scheme = SketchOutdetect(graph.vertices(), edge_ids, repetitions=12, seed=5)
    failures = 0
    for size in (1, 2, 3):
        for subset in itertools.combinations(sorted(graph.vertices()), size):
            vertex_set = set(subset)
            outgoing = {edge_ids[canonical_edge(u, v)] for u, v in graph.edges()
                        if (u in vertex_set) != (v in vertex_set)}
            combined = scheme.label_of_set(vertex_set)
            if not outgoing:
                assert scheme.decode(combined) == []
                continue
            try:
                decoded = scheme.decode(combined)
            except OutdetectDecodeError:
                failures += 1
                continue
            assert any(identifier in outgoing for identifier in decoded)
    # whp scheme: a small number of failures is tolerated, silent lies are not.
    assert failures <= 2


def test_sketch_zero_label_for_whole_graph():
    graph, _, edge_ids = line_graph_scheme()
    scheme = SketchOutdetect(graph.vertices(), edge_ids, repetitions=6, seed=1)
    assert scheme.decode(scheme.label_of_set(graph.vertices())) == []


def test_sketch_is_marked_randomized():
    graph, _, edge_ids = line_graph_scheme()
    scheme = SketchOutdetect(graph.vertices(), edge_ids)
    assert scheme.deterministic is False
    assert scheme.label_bit_size(scheme.zero_label()) > 0
