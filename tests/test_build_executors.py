"""Conformance suite for the build executors (:mod:`repro.build`).

One build contract, three execution strategies: the same ``(graph, config)``
scenarios are constructed with the serial, thread, and process executors, and
the resulting labelings must be **byte-identical** — asserted on whole
``to_snapshot_bytes()`` snapshots, which cover every vertex label, edge
label, and outdetect parameter.  Also covered: executor resolution (specs,
``jobs`` semantics, the ``REPRO_BUILD_EXECUTOR`` environment override),
the staged :class:`~repro.build.plan.BuildReport`, the
:func:`~repro.build.build_labeling` facade, every rewired entry point
(``Oracle.build(jobs=...)``, ``open_oracle("build:...?jobs=...")``, the CLI
``--jobs`` flag), and shard partitioning itself.
"""

import json
import os

import pytest

from repro.api import Oracle, open_oracle, parse_build_query
from repro.build import (EXECUTOR_ENV_VAR, STAGES, BuildExecutor, BuildPlan,
                        BuildReport, ProcessExecutor, SerialExecutor,
                        ThreadExecutor, available_executors, build_labeling,
                        resolve_executor)
from repro.build.plan import _chunks
from repro.build.shards import build_shard, merge_shards, rs_shard_task
from repro.core.config import FTCConfig, SchemeVariant, resolve_build_executor
from repro.core.ftc import FTCLabeling
from repro.workloads import GraphFamily, make_graph

EXECUTORS = ("serial", "thread:2", "process:2")


def scenario_configs():
    """The shared scenario set: every scheme family, both outdetect kinds."""
    return [
        FTCConfig(max_faults=2),
        FTCConfig(max_faults=3, variant=SchemeVariant.DETERMINISTIC_POLY),
        FTCConfig(max_faults=2, variant=SchemeVariant.RANDOMIZED_FULL,
                  random_seed=7),
        FTCConfig(max_faults=2, variant=SchemeVariant.SKETCH_WHP, random_seed=3),
    ]


@pytest.fixture(scope="module")
def graphs():
    return {
        "er": make_graph(GraphFamily.ERDOS_RENYI, n=24, seed=5),
        "tree": make_graph(GraphFamily.TREE_PLUS_CHORDS, n=16, seed=2, density=0.0),
    }


# ------------------------------------------------------------- conformance

def test_executors_satisfy_the_protocol():
    for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
        assert isinstance(executor, BuildExecutor)
        assert executor.name in available_executors()
        assert executor.jobs >= 1


def test_byte_identical_snapshots_across_executors(graphs):
    """The acceptance criterion: same scenario set, three executors, equal
    snapshot bytes everywhere."""
    for graph_name, graph in graphs.items():
        for config in scenario_configs():
            snapshots = {
                spec: FTCLabeling(graph, config,
                                  executor=resolve_executor(spec)).to_snapshot_bytes()
                for spec in EXECUTORS
            }
            reference = snapshots["serial"]
            for spec, data in snapshots.items():
                assert data == reference, (graph_name, config.variant, spec)


def test_parallel_answers_match_ground_truth(graphs):
    graph = graphs["er"]
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2), executor="process:2")
    edges = sorted(graph.edges())
    faults = edges[:2]
    vertices = sorted(graph.vertices())
    pairs = [(vertices[i], vertices[-1 - i]) for i in range(5)]
    expected = [graph.connected(s, t, removed=faults) for s, t in pairs]
    assert labeling.connected_many(pairs, faults) == expected


# ------------------------------------------------------------ build report

def test_build_report_shape(graphs):
    labeling = FTCLabeling(graphs["er"], FTCConfig(max_faults=2),
                           executor=ThreadExecutor(2))
    report = labeling.build_report
    assert isinstance(report, BuildReport)
    assert report.executor == "thread"
    assert report.jobs == 2
    assert tuple(report.stage_seconds) == STAGES
    assert all(seconds >= 0.0 for seconds in report.stage_seconds.values())
    assert report.total_seconds >= sum(report.stage_seconds.values()) * 0.5
    assert report.level_count >= 1
    assert report.shard_count >= report.level_count
    payload = report.to_dict()
    assert payload["executor"] == "thread"
    json.dumps(payload)  # must be JSON-ready for the CLI
    assert labeling.construction_seconds == report.total_seconds
    # Per-stage peak memory rides along (RSS probe on POSIX, else empty).
    assert report.memory_probe in ("tracemalloc", "rss", "unavailable")
    assert payload["memory_probe"] == report.memory_probe
    if report.memory_probe != "unavailable":
        assert tuple(report.stage_peak_bytes) == STAGES
        assert all(peak > 0 for peak in report.stage_peak_bytes.values())


def test_build_report_tracemalloc_peaks_and_bit_identity():
    """With tracemalloc on, the report's per-stage peaks are true per-phase
    readings — and instrumentation must not perturb the labels (bit-identity
    of the snapshot bytes with the probe on vs off)."""
    import tracemalloc

    graph = make_graph(GraphFamily.ERDOS_RENYI, n=24, seed=5)
    config = FTCConfig(max_faults=2)
    plain = FTCLabeling(graph, config, executor="serial")
    assert plain.build_report.memory_probe in ("rss", "unavailable")
    tracemalloc.start()
    try:
        traced = FTCLabeling(graph, config, executor="serial")
    finally:
        tracemalloc.stop()
    report = traced.build_report
    assert report.memory_probe == "tracemalloc"
    assert tuple(report.stage_peak_bytes) == STAGES
    assert all(peak >= 0 for peak in report.stage_peak_bytes.values())
    assert traced.to_snapshot_bytes() == plain.to_snapshot_bytes()


def test_report_shard_count_scales_with_jobs(graphs):
    serial = FTCLabeling(graphs["er"], FTCConfig(max_faults=2),
                         executor="serial")
    parallel = FTCLabeling(graphs["er"], FTCConfig(max_faults=2),
                           executor=ThreadExecutor(4))
    assert serial.build_report.executor == "serial"
    assert serial.build_report.shard_count == serial.build_report.level_count
    assert parallel.build_report.shard_count > parallel.build_report.level_count


# ------------------------------------------------------------- resolution

def test_resolve_executor_specs():
    assert resolve_executor("serial").name == "serial"
    assert resolve_executor("thread").name == "thread"
    assert resolve_executor("process:3").jobs == 3
    assert resolve_executor("THREAD:2").name == "thread"
    # String specs resolve to shared instances (one pool per spec).
    assert resolve_executor("process:3") is resolve_executor("process:3")


def test_resolve_executor_jobs_semantics():
    assert resolve_executor(jobs=1).name == "serial"
    parallel = resolve_executor(jobs=2)
    assert parallel.name == "process"
    assert parallel.jobs == 2
    # A spec without a count takes the separate jobs= as its worker bound.
    assert resolve_executor("thread", jobs=5).jobs == 5


def test_resolve_executor_rejects_bad_input():
    with pytest.raises(ValueError):
        resolve_executor("fibers")
    with pytest.raises(ValueError):
        resolve_executor("process:0")
    with pytest.raises(ValueError):
        resolve_executor("serial:4")
    with pytest.raises(ValueError):
        resolve_executor(jobs=0)
    with pytest.raises(ValueError):
        resolve_executor("process:2", jobs=3)
    with pytest.raises(ValueError):
        resolve_executor(SerialExecutor(), jobs=2)
    with pytest.raises(TypeError):
        resolve_executor(object())


def test_resolve_executor_instance_passthrough():
    executor = ThreadExecutor(2)
    assert resolve_executor(executor) is executor
    assert resolve_executor(executor, jobs=2) is executor


def test_env_override_selects_the_default(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread:2")
    assert resolve_executor().name == "thread"
    # Explicit arguments beat the environment.
    assert resolve_executor("serial").name == "serial"
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "fibers")
    with pytest.raises(ValueError):
        resolve_executor()
    monkeypatch.delenv(EXECUTOR_ENV_VAR)
    assert resolve_executor().name == "serial"


def test_resolve_build_executor_joins_config_resolution(monkeypatch):
    """The core.config entry point delegates to the build package."""
    monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
    assert resolve_build_executor().name == "serial"
    assert resolve_build_executor(jobs=2).name == "process"
    assert resolve_build_executor("thread:2").name == "thread"


def test_closed_pooled_executor_refuses_work():
    executor = ThreadExecutor(2)
    assert executor.map(len, [[1], [1, 2]]) == [1, 2]
    executor.close()
    executor.close()  # idempotent
    with pytest.raises(RuntimeError):
        executor.map(len, [[1], [1, 2]])
    with pytest.raises(RuntimeError):
        executor.map(len, [[1]])  # the single-task shortcut checks too


def test_broken_process_pool_recovers_on_the_next_map():
    """A killed worker breaks the pool; the executor replaces it, not dies."""
    from concurrent.futures import BrokenExecutor

    executor = ProcessExecutor(1)
    try:
        with pytest.raises(BrokenExecutor):
            executor.map(os._exit, [1, 1])  # both tasks kill their worker
        assert executor.map(len, [[1], [1, 2]]) == [1, 2]  # fresh pool
    finally:
        executor.close()


def test_closing_a_shared_executor_does_not_poison_the_cache():
    first = resolve_executor("thread:3")
    first.close()
    fresh = resolve_executor("thread:3")
    assert fresh is not first
    assert fresh.map(len, [[1], [1, 2]]) == [1, 2]


def test_serial_spec_with_parallel_jobs_is_rejected():
    with pytest.raises(ValueError, match="serial"):
        resolve_executor("serial", jobs=4)
    assert resolve_executor("serial", jobs=1).name == "serial"


# ---------------------------------------------------------------- facades

def test_build_labeling_facade(graphs):
    labeling = build_labeling(graphs["er"], max_faults=2, jobs=2)
    assert isinstance(labeling, FTCLabeling)
    assert labeling.build_report.executor == "process"
    reference = build_labeling(graphs["er"], max_faults=2)
    assert labeling.to_snapshot_bytes() == reference.to_snapshot_bytes()
    with pytest.raises(TypeError):
        build_labeling(graphs["er"])  # neither config nor max_faults


def test_oracle_build_with_jobs(graphs):
    graph = graphs["er"]
    with Oracle.build(graph, max_faults=2, jobs=2) as oracle:
        assert oracle.build_report.executor == "process"
        serial = Oracle.build(graph, max_faults=2)
        assert oracle.to_snapshot_bytes() == serial.to_snapshot_bytes()


def test_open_oracle_uri_jobs(tmp_path, graphs):
    graph = graphs["er"]
    edges = tmp_path / "edges.txt"
    edges.write_text("".join("%s %s\n" % edge for edge in sorted(graph.edges())))
    with open_oracle("build:%s?jobs=2" % edges, max_faults=2) as oracle:
        assert oracle.build_report.executor == "process"
        assert oracle.build_report.jobs == 2
    with open_oracle("build:%s?executor=thread:2" % edges, max_faults=2) as oracle:
        assert oracle.build_report.executor == "thread"


def test_open_oracle_rejects_jobs_on_constructed_transports():
    """Construction options on snapshot/tcp URIs fail loudly, never no-op."""
    with pytest.raises(ValueError, match="already-constructed"):
        open_oracle("snapshot:whatever.ftcs", jobs=4)
    with pytest.raises(ValueError, match="already-constructed"):
        open_oracle("tcp://127.0.0.1:1", executor="process:2")


def test_parse_build_query():
    assert parse_build_query("edges.txt") == ("edges.txt", {})
    assert parse_build_query("edges.txt?jobs=4") == ("edges.txt", {"jobs": 4})
    assert parse_build_query("?executor=thread:2&jobs=2") == \
        ("", {"executor": "thread:2", "jobs": 2})
    with pytest.raises(ValueError):
        parse_build_query("edges.txt?jobs=zero")
    with pytest.raises(ValueError):
        parse_build_query("edges.txt?workers=4")


def test_cli_jobs_flag(tmp_path, graphs, capsys):
    from repro.cli import main

    graph = graphs["er"]
    edges = tmp_path / "edges.txt"
    edges.write_text("".join("%s %s\n" % edge for edge in sorted(graph.edges())))
    fault = "%s-%s" % sorted(graph.edges())[0]
    code = main(["batch-query", "--edges", str(edges), "--max-faults", "2",
                 "--jobs", "2", "--fault", fault, "--random-pairs", "5",
                 "--check", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["result"]["ground_truth_mismatches"] == 0


def test_cli_bad_jobs_and_executor_are_clean_errors(tmp_path, capsys):
    """Flag mistakes print one error line and exit 2 — never a traceback."""
    from repro.cli import main

    edges = tmp_path / "edges.txt"
    edges.write_text("a b\nb c\nc a\n")
    assert main(["query", "--edges", str(edges), "--max-faults", "1",
                 "--source", "a", "--target", "c", "--jobs", "0"]) == 2
    assert "at least 1" in capsys.readouterr().err
    assert main(["batch-query", "--oracle", "build:%s?executor=bogus" % edges,
                 "--max-faults", "1", "--pair", "a-c"]) == 2
    assert "unknown build executor" in capsys.readouterr().err
    assert main(["save-labeling", "--edges", str(edges), "--max-faults", "1",
                 "--jobs", "-3", "--output", str(tmp_path / "x.ftcs")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_uri_jobs_conflict_is_an_error(tmp_path, capsys):
    from repro.cli import main

    edges = tmp_path / "edges.txt"
    edges.write_text("a b\nb c\n")
    for argv in (["batch-query", "--oracle", "build:%s?jobs=4" % edges,
                  "--jobs", "2", "--max-faults", "1", "--pair", "a-c"],
                 ["stats", "--oracle", "build:%s?jobs=4" % edges,
                  "--jobs", "2", "--max-faults", "1"]):
        assert main(argv) == 2
        assert "conflicts with --jobs" in capsys.readouterr().err


def test_cli_jobs_on_a_constructed_transport_notes_inapplicability(
        tmp_path, graphs, capsys):
    """--jobs on snapshot/tcp paths must say it is doing nothing."""
    from repro.cli import main

    graph = graphs["er"]
    edges = tmp_path / "edges.txt"
    edges.write_text("".join("%s %s\n" % edge for edge in sorted(graph.edges())))
    snapshot = tmp_path / "x.ftcs"
    assert main(["save-labeling", "--edges", str(edges), "--max-faults", "2",
                 "--output", str(snapshot)]) == 0
    capsys.readouterr()
    fault = "%s-%s" % sorted(graph.edges())[0]
    assert main(["batch-query", "--snapshot", str(snapshot), "--jobs", "4",
                 "--fault", fault, "--random-pairs", "2", "--json"]) == 0
    captured = capsys.readouterr()
    assert "--jobs 4 does not apply" in captured.err
    assert main(["stats", "--oracle", "snapshot:%s" % snapshot,
                 "--jobs", "4"]) == 0
    assert "--jobs 4 does not apply" in capsys.readouterr().err


def test_cli_save_labeling_reports_the_build(tmp_path, graphs, capsys):
    from repro.cli import main

    graph = graphs["er"]
    edges = tmp_path / "edges.txt"
    edges.write_text("".join("%s %s\n" % edge for edge in sorted(graph.edges())))
    out_serial = tmp_path / "serial.ftcs"
    out_jobs = tmp_path / "jobs.ftcs"
    assert main(["save-labeling", "--edges", str(edges), "--max-faults", "2",
                 "--output", str(out_serial)]) == 0
    default_report = json.loads(capsys.readouterr().out)
    # Without --jobs the CLI follows the environment default (serial when
    # REPRO_BUILD_EXECUTOR is unset — e.g. the process-executor CI job).
    expected = resolve_executor().name if os.environ.get(EXECUTOR_ENV_VAR) \
        else "serial"
    assert default_report["build_report"]["executor"] == expected
    assert main(["save-labeling", "--edges", str(edges), "--max-faults", "2",
                 "--jobs", "2", "--output", str(out_jobs)]) == 0
    jobs_report = json.loads(capsys.readouterr().out)
    assert jobs_report["build_report"]["executor"] == "process"
    # The CLI-level bit-identity guarantee: same artifact bytes either way.
    assert out_serial.read_bytes() == out_jobs.read_bytes()


# ------------------------------------------------------------------ shards

def test_chunks_partition_exactly():
    items = list(range(10))
    for parts in (1, 2, 3, 7, 10, 25):
        chunks = _chunks(items, parts)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == min(parts, len(items))
        assert not any(len(chunk) == 0 for chunk in chunks)
    assert _chunks([], 4) == [[]]


def test_merge_shards_is_sparse_xor():
    first = ([0, 2], [[1, 2], [4, 0]])
    second = ([2], [[4, 5]])
    assert merge_shards(4, 2, [first, second]) == \
        [[1, 2], [0, 0], [0, 5], [0, 0]]
    assert merge_shards(2, 3, []) == [[0, 0, 0], [0, 0, 0]]
    with pytest.raises(ValueError):
        merge_shards(4, 2, [([0], [[1, 2, 3]])])


def test_merge_shards_bulk_backend_is_bit_identical():
    from repro.gf2.bulk import get_bulk_ops

    shards = [([0, 2], [[1, 2], [4, 0]]), ([2, 3], [[4, 5], [7, 7]]),
              ([0], [[8, 8]])]
    plain = merge_shards(4, 2, shards)
    bulked = merge_shards(4, 2, shards, bulk=get_bulk_ops(None, max_bits=8))
    assert plain == bulked == [[9, 10], [0, 0], [0, 5], [7, 7]]


def test_shard_partitions_merge_to_the_single_shot_matrix():
    """Any partition of a level's edges XORs back to the unsharded labels."""
    from repro.gf2.field import GF2m

    field = GF2m(8)
    edges = [(0, 1, 3), (1, 2, 5), (2, 3, 7), (0, 3, 11), (1, 3, 13)]
    whole = build_shard(rs_shard_task(field.width, field.modulus, 2, edges))
    reference = merge_shards(4, 4, [whole])
    for split in (1, 2, 3, 5):
        chunks = _chunks(edges, split)
        results = [build_shard(rs_shard_task(field.width, field.modulus, 2, chunk))
                   for chunk in chunks]
        assert merge_shards(4, 4, results) == reference


def test_plan_validates_inputs(graphs):
    from repro.graphs.graph import Graph

    with pytest.raises(TypeError):
        BuildPlan(graphs["er"], config=None)
    disconnected = Graph([("a", "b"), ("c", "d")])
    with pytest.raises(ValueError):
        BuildPlan(disconnected, FTCConfig(max_faults=1))
