"""Conformance tests for the batched decode primitives.

The whole point of the vectorized decode path is that it is a pure speed knob:
every batched primitive must return, element for element, exactly what the
scalar reference computes — across all :class:`~repro.gf2.bulk.BulkOps`
backends and field widths, on random inputs, including which failure each
entry would raise.  These assertions are hard (never advisory): the batch
session and the outdetect schemes route all decoding through these functions.
"""

from __future__ import annotations

import random

import pytest

from repro.coding.berlekamp_massey import berlekamp_massey, berlekamp_massey_many
from repro.coding.rootfind import chien_roots, find_roots, find_roots_bulk, find_roots_many
from repro.coding.rs_decoder import DecodeFailure, SparseRecoveryDecoder
from repro.coding.syndrome import SyndromeEncoder
from repro.gf2.bulk import NumpyBulkOps, PyBulkOps, numpy_available
from repro.gf2.field import GF2m
from repro.gf2.poly import Gf2Poly

WIDTHS = [8, 12, 16]
THRESHOLD = 5


def _backends(field):
    backends = [PyBulkOps(field)]
    if numpy_available() and field.width <= 32:
        # small_cutoff=0 forces the numpy kernels even on tiny batches.
        backends.append(NumpyBulkOps(field, small_cutoff=0))
    return backends


def _cases(field):
    for bulk in _backends(field):
        yield field, bulk


def all_cases():
    for width in WIDTHS:
        field = GF2m(width)
        yield from _cases(field)


CASES = list(all_cases())
CASE_IDS = ["w%d-%s" % (field.width, bulk.name) for field, bulk in CASES]


def _random_supports(field, rng, count, max_size):
    return [rng.sample(range(1, field.order), rng.randrange(0, max_size + 1))
            for _ in range(count)]


@pytest.mark.parametrize("field,bulk", CASES, ids=CASE_IDS)
def test_syndrome_of_many_matches_scalar(field, bulk):
    rng = random.Random(field.width * 101 + len(bulk.name))
    encoder = SyndromeEncoder(field, THRESHOLD, bulk=bulk)
    supports = _random_supports(field, rng, 40, 2 * THRESHOLD)
    supports.append([])  # the empty support must round-trip to the zero syndrome
    batched = encoder.syndrome_of_many(supports)
    assert batched == [encoder.syndrome_of(support) for support in supports]
    assert encoder.syndrome_of_many([]) == []


@pytest.mark.parametrize("field,bulk", CASES, ids=CASE_IDS)
def test_berlekamp_massey_many_matches_scalar(field, bulk):
    rng = random.Random(field.width * 103 + len(bulk.name))
    sequences = [[rng.randrange(field.order) for _ in range(rng.randrange(0, 14))]
                 for _ in range(40)]
    sequences.append([])  # the empty sequence has the constant-1 locator
    batched = berlekamp_massey_many(field, sequences, bulk)
    for sequence, poly in zip(sequences, batched):
        assert poly.coeffs == berlekamp_massey(field, sequence).coeffs
    assert berlekamp_massey_many(field, [], bulk) == []


@pytest.mark.parametrize("field,bulk", CASES, ids=CASE_IDS)
def test_mixed_length_sequences_match_scalar(field, bulk):
    """Shorter sequences must stop advancing exactly where the scalar run does."""
    rng = random.Random(field.width * 107)
    sequences = [[rng.randrange(field.order) for _ in range(length)]
                 for length in (1, 3, 10, 2, 7, 10, 4)]
    batched = berlekamp_massey_many(field, sequences, bulk)
    for sequence, poly in zip(sequences, batched):
        assert poly.coeffs == berlekamp_massey(field, sequence).coeffs


@pytest.mark.parametrize("field,bulk", CASES, ids=CASE_IDS)
def test_root_finding_strategies_agree(field, bulk):
    rng = random.Random(field.width * 109 + len(bulk.name))
    polys = []
    for _ in range(15):
        # Products of random linear factors (all roots in the field) plus
        # random dense polynomials (roots mostly outside the field).
        support = rng.sample(range(1, field.order), rng.randrange(1, 6))
        poly = Gf2Poly.one(field)
        for element in support:
            poly = poly * Gf2Poly(field, [1, element])
        polys.append(poly)
        polys.append(Gf2Poly(field, [rng.randrange(field.order)
                                     for _ in range(rng.randrange(2, 6))]))
    polys = [poly for poly in polys if not poly.is_zero()]
    reference = [find_roots(poly) for poly in polys]
    assert find_roots_many(polys, bulk) == reference
    for poly, expected in zip(polys, reference):
        assert find_roots_bulk(poly, bulk) == expected
        # The exhaustive Chien sweep is O(order * degree); spot-check it on
        # the small fields only (the dispatch guard keeps it off big ones).
        if poly.degree > 0 and field.order <= (1 << 12):
            assert chien_roots(poly, bulk) == expected


@pytest.mark.parametrize("field,bulk", CASES, ids=CASE_IDS)
@pytest.mark.parametrize("adaptive", [False, True])
def test_decode_many_matches_scalar_decoder(field, bulk, adaptive):
    """Per-entry results AND failure messages equal the scalar decoder's."""
    rng = random.Random(field.width * 113 + adaptive)
    encoder = SyndromeEncoder(field, THRESHOLD, bulk=bulk)
    batched_decoder = SparseRecoveryDecoder(field, THRESHOLD, bulk=bulk)
    scalar_decoder = SparseRecoveryDecoder(field, THRESHOLD)
    # Supports beyond the threshold make some syndromes undecodable, which
    # must surface as the same DecodeFailure message the scalar path raises.
    supports = _random_supports(field, rng, 40, THRESHOLD + 2)
    syndromes = encoder.syndrome_of_many(supports)
    entries = batched_decoder.decode_many_deferred(syndromes, adaptive=adaptive)
    failures = 0
    for support, syndrome, entry in zip(supports, syndromes, entries):
        try:
            expected = scalar_decoder.decode_adaptive(syndrome) if adaptive \
                else scalar_decoder.decode(syndrome)
        except DecodeFailure as error:
            failures += 1
            assert isinstance(entry, DecodeFailure)
            assert str(entry) == str(error)
        else:
            assert entry == expected
            if len(set(support)) <= THRESHOLD:
                assert entry == sorted(set(support))
    if failures:
        with pytest.raises(DecodeFailure):
            batched_decoder.decode_many(syndromes, adaptive=adaptive)
    else:
        assert batched_decoder.decode_many(syndromes, adaptive=adaptive) == entries


def test_decode_many_rejects_wrong_length():
    field = GF2m(8)
    decoder = SparseRecoveryDecoder(field, THRESHOLD)
    with pytest.raises(ValueError):
        decoder.decode_many_deferred([[0] * (2 * THRESHOLD - 1)])


@pytest.mark.parametrize("width", WIDTHS)
def test_backends_agree_on_decode_many(width):
    """Pure-Python and numpy backends produce bit-identical batched decodes."""
    if not numpy_available():
        pytest.skip("numpy backend not available")
    field = GF2m(width)
    rng = random.Random(width * 127)
    encoder = SyndromeEncoder(field, THRESHOLD, bulk=PyBulkOps(field))
    supports = _random_supports(field, rng, 25, THRESHOLD + 2)
    syndromes = encoder.syndrome_of_many(supports)
    results = []
    for bulk in _backends(field):
        decoder = SparseRecoveryDecoder(field, THRESHOLD, bulk=bulk)
        entries = decoder.decode_many_deferred(syndromes, adaptive=True)
        results.append([str(entry) if isinstance(entry, DecodeFailure) else entry
                        for entry in entries])
    assert all(result == results[0] for result in results[1:])


# ------------------------------------------------- bulk/scalar parity table

def test_parity_table_resolves_every_registered_pair():
    """Every (scalar, bulk) pair in the declarative registry imports and
    resolves to callables — the runtime half of the RPL005 lint rule: an
    entry that lints clean but no longer exists in the code fails here."""
    from repro.analysis.parity import PARITY_TABLE

    assert PARITY_TABLE, "the parity registry must never be empty"
    for pair in PARITY_TABLE:
        scalar, bulk = pair.resolve()
        assert callable(scalar) and callable(bulk), pair


def test_parity_table_matches_discovered_bulk_ops():
    """The registry and the AST agree exactly: every public ``*_many`` def in
    repro.coding / repro.outdetect is registered, and every registered
    ``*_many`` member is discovered — neither side can drift alone."""
    import ast as ast_module
    from pathlib import Path

    from repro.analysis.parity import registered_bulk_names

    import repro.coding
    import repro.outdetect

    discovered = set()
    for package in (repro.coding, repro.outdetect):
        for path in sorted(Path(package.__file__).parent.glob("*.py")):
            module_name = "%s.%s" % (package.__name__, path.stem) \
                if path.stem != "__init__" else package.__name__
            tree = ast_module.parse(path.read_text())
            for node in tree.body:
                scope = [(node.name, node)] if isinstance(
                    node, (ast_module.FunctionDef,
                           ast_module.AsyncFunctionDef)) else []
                if isinstance(node, ast_module.ClassDef):
                    scope = [("%s.%s" % (node.name, method.name), method)
                             for method in node.body
                             if isinstance(method, (ast_module.FunctionDef,
                                                    ast_module.AsyncFunctionDef))]
                for qualname, _ in scope:
                    terminal = qualname.rsplit(".", 1)[-1]
                    if terminal.endswith("_many") and \
                            not terminal.startswith("_"):
                        discovered.add((module_name, qualname))

    registered = {(pair.module, bulk_name)
                  for (pair_module, bulk_name), pair
                  in registered_bulk_names().items()
                  for pair_module in [pair.module]
                  if bulk_name.rsplit(".", 1)[-1].endswith("_many")}
    assert discovered == registered, \
        "unregistered: %s / stale: %s" % (sorted(discovered - registered),
                                          sorted(registered - discovered))


def test_parity_pairs_agree_on_a_shared_workload():
    """Spot-check through the registry itself: resolving the rootfind pair
    from the table and driving it produces scalar-identical answers."""
    from repro.analysis.parity import PARITY_TABLE

    pair = next(p for p in PARITY_TABLE
                if p.module == "repro.coding.rootfind" and p.bulk == "find_roots_many")
    scalar, bulk = pair.resolve()
    field = GF2m(8)
    rng = random.Random(11)
    polys = [Gf2Poly(field, [rng.randrange(field.order) for _ in range(3)] +
                     [1 + rng.randrange(field.order - 1)])
             for _ in range(6)]
    expected = [scalar(poly) for poly in polys]
    assert bulk(polys) == expected
