"""Unit and property tests for GF(2^w) arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf2 import GF2m, find_irreducible, is_irreducible


@pytest.fixture(scope="module")
def small_field():
    return GF2m(8)


@pytest.fixture(scope="module")
def large_field():
    return GF2m(32)


def test_known_irreducibles_are_irreducible():
    for width in (2, 3, 4, 8, 12, 16, 20, 32, 48, 64):
        poly = find_irreducible(width)
        assert poly.bit_length() - 1 == width
        assert is_irreducible(poly)


def test_reducible_polynomial_detected():
    # x^4 + x^2 = x^2(x^2 + 1) is reducible.
    assert not is_irreducible(0b10100)
    # (x + 1)^2 = x^2 + 1 is reducible.
    assert not is_irreducible(0b101)


def test_field_rejects_bad_width():
    with pytest.raises(ValueError):
        GF2m(0)


def test_add_is_xor(small_field):
    assert small_field.add(0b1010, 0b0110) == 0b1100


def test_mul_identity_and_zero(small_field):
    for value in range(small_field.order):
        assert small_field.mul(value, 1) == value
        assert small_field.mul(value, 0) == 0


def test_inverse_small_field_exhaustive(small_field):
    for value in range(1, small_field.order):
        inverse = small_field.inv(value)
        assert small_field.mul(value, inverse) == 1


def test_inverse_of_zero_raises(small_field):
    with pytest.raises(ZeroDivisionError):
        small_field.inv(0)


def test_pow_matches_repeated_multiplication(small_field):
    for base in (1, 2, 7, 133, 200):
        accumulator = 1
        for exponent in range(10):
            assert small_field.pow(base, exponent) == accumulator
            accumulator = small_field.mul(accumulator, base)


def test_large_field_inverse_and_pow(large_field):
    for value in (1, 2, 12345, 0xDEADBEEF % large_field.order, large_field.order - 1):
        inverse = large_field.inv(value)
        assert large_field.mul(value, inverse) == 1
    assert large_field.pow(3, 0) == 1
    assert large_field.mul(large_field.pow(3, 7), 3) == large_field.pow(3, 8)


def test_trace_is_additive(large_field):
    a, b = 0xABCDEF, 0x123456
    assert large_field.trace(a) in (0, 1)
    assert large_field.trace(a ^ b) == large_field.trace(a) ^ large_field.trace(b)


def test_fixed_multiplier_matches_generic(large_field):
    multiplier = large_field.multiplier(0xCAFEBABE % large_field.order)
    for value in (0, 1, 3, 0xFFFF, 0x12345678 % large_field.order):
        assert multiplier.mul(value) == large_field.mul(0xCAFEBABE % large_field.order, value)


@settings(max_examples=100, deadline=None)
@given(a=st.integers(min_value=0, max_value=255),
       b=st.integers(min_value=0, max_value=255),
       c=st.integers(min_value=0, max_value=255))
def test_field_axioms_gf256(a, b, c):
    field = GF2m(8)
    # Commutativity and associativity of multiplication.
    assert field.mul(a, b) == field.mul(b, a)
    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
    # Distributivity over addition.
    assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)


@settings(max_examples=50, deadline=None)
@given(a=st.integers(min_value=1, max_value=(1 << 20) - 1),
       b=st.integers(min_value=1, max_value=(1 << 20) - 1))
def test_division_roundtrip_gf20(a, b):
    field = GF2m(20)
    quotient = field.div(a, b)
    assert field.mul(quotient, b) == a
