"""Tests for the decoder-side internals: fragment structure, labels, failure injection."""

import itertools
import random

import networkx as nx
import pytest

from repro.core import FTCConfig, FTCLabeling, QueryFailure
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import ROOT_FRAGMENT, BasicQueryEngine, FragmentStructure
from repro.core.fast_query import FastQueryEngine
from repro.graphs import Graph, bfs_spanning_tree, canonical_edge
from repro.graphs.fragments import fragment_index_of
from repro.labeling import AncestryLabel


def build_labeling(n=14, m=30, seed=0, f=3):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    graph = Graph.from_networkx(nx_graph)
    return graph, FTCLabeling(graph, FTCConfig(max_faults=f))


# --------------------------------------------------------------- label objects

def test_edge_label_requires_ancestor_relation():
    upper = AncestryLabel(0, 10)
    lower = AncestryLabel(2, 5)
    EdgeLabel(ancestry_upper=upper, ancestry_lower=lower, outdetect_subtree_sum=(), outdetect_bits=0)
    with pytest.raises(ValueError):
        EdgeLabel(ancestry_upper=lower, ancestry_lower=upper, outdetect_subtree_sum=(), outdetect_bits=0)


def test_vertex_and_edge_label_bit_sizes():
    graph, labeling = build_labeling()
    for vertex in graph.vertices():
        assert labeling.vertex_label(vertex).bit_size() > 0
    for edge in graph.edges():
        label = labeling.edge_label(*edge)
        assert label.bit_size() >= label.outdetect_bits
        assert label.subtree_interval() == label.ancestry_lower


# ----------------------------------------------------------- fragment structure

def test_fragment_structure_matches_ground_truth():
    graph, labeling = build_labeling(seed=3)
    tree_prime = labeling.instance.auxiliary.tree_prime
    ancestry = labeling.instance.ancestry
    rng = random.Random(1)
    graph_edges = sorted(graph.edges())
    for _ in range(20):
        faults = rng.sample(graph_edges, 3)
        mapped = labeling.instance.auxiliary.map_faults(faults)
        fault_labels = [labeling.edge_label(u, v) for u, v in faults]
        structure = FragmentStructure(fault_labels)
        ground_truth = fragment_index_of(tree_prime, mapped)
        # Two vertices are in the same decoder-side fragment iff they are in
        # the same ground-truth component of T' - sigma(F).
        vertices = sorted(graph.vertices())
        for u, v in itertools.combinations(vertices[:10], 2):
            same_decoder = (structure.fragment_of_vertex(ancestry.label(u))
                            == structure.fragment_of_vertex(ancestry.label(v)))
            same_truth = ground_truth[u] == ground_truth[v]
            assert same_decoder == same_truth, (faults, u, v)


def test_fragment_structure_deduplicates_repeated_faults():
    graph, labeling = build_labeling(seed=4)
    edge = sorted(graph.edges())[0]
    label = labeling.edge_label(*edge)
    structure = FragmentStructure([label, label, label])
    assert structure.num_fragments() == 2


def test_fragment_structure_no_faults():
    structure = FragmentStructure([])
    assert structure.fragment_ids() == [ROOT_FRAGMENT]
    assert structure.fragment_of_preorder(5) == ROOT_FRAGMENT
    assert structure.boundary_of(ROOT_FRAGMENT) == set()


def test_fragment_boundaries_cover_all_faults():
    graph, labeling = build_labeling(seed=5)
    faults = sorted(graph.edges())[:3]
    fault_labels = [labeling.edge_label(u, v) for u, v in faults]
    structure = FragmentStructure(fault_labels)
    # Every fault index appears in exactly two fragment boundaries.
    counts = {index: 0 for index in range(len(faults))}
    for fragment_id in structure.fragment_ids():
        for index in structure.boundary_of(fragment_id):
            counts[index] += 1
    assert all(count == 2 for count in counts.values())


# ------------------------------------------------------------ query edge cases

def test_query_with_duplicate_faults():
    graph, labeling = build_labeling(seed=6)
    edge = sorted(graph.edges())[1]
    for s, t in itertools.combinations(sorted(graph.vertices())[:6], 2):
        expected = graph.connected(s, t, removed=[edge])
        assert labeling.connected(s, t, [edge, edge, edge]) == expected


def test_query_same_vertex_is_always_connected():
    graph, labeling = build_labeling(seed=7)
    faults = sorted(graph.edges())[:3]
    for vertex in list(graph.vertices())[:5]:
        assert labeling.connected(vertex, vertex, faults) is True


def test_query_with_no_faults_on_connected_graph():
    graph, labeling = build_labeling(seed=8)
    vertices = sorted(graph.vertices())
    assert labeling.connected(vertices[0], vertices[-1], []) is True


def test_query_faults_far_from_endpoints():
    """Faults in a different part of the graph must not change the answer."""
    # Two triangles joined by a path: faults inside one triangle do not affect
    # connectivity inside the other.
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 4)]
    graph = Graph(edges)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    assert labeling.connected(5, 6, [(0, 1), (1, 2)]) is True
    assert labeling.connected(0, 1, [(4, 5), (6, 4)]) is True


def test_star_and_cycle_and_complete_graphs():
    star = Graph([(0, i) for i in range(1, 8)])
    cycle = Graph([(i, (i + 1) % 9) for i in range(9)])
    complete = Graph([(i, j) for i in range(6) for j in range(i + 1, 6)])
    for graph, f in ((star, 2), (cycle, 2), (complete, 3)):
        labeling = FTCLabeling(graph, FTCConfig(max_faults=f))
        edges = sorted(graph.edges())
        rng = random.Random(0)
        for _ in range(25):
            faults = rng.sample(edges, min(f, len(edges)))
            s, t = rng.sample(sorted(graph.vertices()), 2)
            assert labeling.connected(s, t, faults) == graph.connected(s, t, removed=faults)


def test_two_cliques_joined_by_bridge():
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(i, j) for i in range(5, 10) for j in range(i + 1, 10)]
    edges += [(4, 5)]
    graph = Graph(edges)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    assert labeling.connected(0, 9, [(4, 5)]) is False
    assert labeling.connected(0, 9, [(0, 1)]) is True
    assert labeling.connected(0, 4, [(4, 5)]) is True


def test_labels_are_deterministic_across_rebuilds():
    graph, first = build_labeling(seed=9)
    _, second = build_labeling(seed=9)
    for vertex in graph.vertices():
        assert first.vertex_label(vertex) == second.vertex_label(vertex)
    for edge in graph.edges():
        assert first.edge_label(*edge) == second.edge_label(*edge)


# ------------------------------------------------------------ failure injection

def test_corrupted_fault_label_is_detected_or_harmless():
    """Corrupting an outdetect subtree sum must not cause silent nonsense beyond
    a wrong connectivity bit: the decoder either raises QueryFailure or returns
    a boolean (never crashes with an internal error)."""
    graph, labeling = build_labeling(seed=10, f=2)
    edges = sorted(graph.edges())
    s, t = sorted(graph.vertices())[0], sorted(graph.vertices())[-1]
    faults = edges[:2]
    genuine = [labeling.edge_label(u, v) for u, v in faults]
    corrupted_sum = tuple(
        tuple(word ^ 0b1011 for word in level) if isinstance(level, tuple) else level
        for level in genuine[0].outdetect_subtree_sum)
    corrupted = EdgeLabel(ancestry_upper=genuine[0].ancestry_upper,
                          ancestry_lower=genuine[0].ancestry_lower,
                          outdetect_subtree_sum=corrupted_sum,
                          outdetect_bits=genuine[0].outdetect_bits)
    decoder = labeling.decoder()
    try:
        result = decoder.connected(labeling.vertex_label(s), labeling.vertex_label(t),
                                   [corrupted, genuine[1]])
        assert isinstance(result, bool)
    except QueryFailure:
        pass


def test_engines_reject_inconsistent_outdetect_gracefully():
    """Both engines surface decoding failures as QueryFailure, not random exceptions."""
    graph, labeling = build_labeling(seed=11, f=2)
    outdetect = labeling.outdetect
    codec = labeling.instance.codec
    basic = BasicQueryEngine(outdetect, codec)
    fast = FastQueryEngine(outdetect, codec)
    source = VertexLabel(ancestry=AncestryLabel(1, 2))
    target = VertexLabel(ancestry=AncestryLabel(3, 4))
    # A fault label whose outdetect sum is garbage (valid structure, wrong values).
    zero = outdetect.zero_label()
    garbage = tuple(tuple(17 for _ in level) for level in zero)
    fault = EdgeLabel(ancestry_upper=AncestryLabel(0, 9), ancestry_lower=AncestryLabel(1, 8),
                      outdetect_subtree_sum=garbage, outdetect_bits=0)
    for engine in (basic, fast):
        try:
            outcome = engine.connected(source, target, [fault])
            assert isinstance(outcome, bool)
        except QueryFailure:
            pass
