"""Tests for the pluggable bulk GF(2^w) backends.

The two backends (pure-Python table-driven, numpy bit-sliced) must produce
bit-identical results on every operation: the batched query pipeline relies on
labels being byte-for-byte reproducible regardless of which backend built
them.
"""

import os
import random

import pytest

from repro.gf2.bulk import (BackendUnavailable, NumpyBulkOps, PyBulkOps,
                            available_backends, get_bulk_ops, numpy_available)
from repro.gf2.field import GF2m
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.sketch import SketchOutdetect

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

WIDTHS = [4, 8, 13, 20, 27, 32]


def _backends(field):
    backends = [PyBulkOps(field)]
    if numpy_available():
        # cutoff 0 forces the vectorized kernels even on tiny inputs
        backends.append(NumpyBulkOps(field, small_cutoff=0))
    return backends


@pytest.mark.parametrize("width", WIDTHS)
def test_mul_many_matches_scalar_field_ops(width):
    field = GF2m(width)
    rng = random.Random(width)
    elements = [rng.randrange(0, field.order) for _ in range(40)]
    others = [rng.randrange(0, field.order) for _ in range(40)]
    scalar = rng.randrange(1, field.order)
    expected_scaled = [field.mul(x, scalar) for x in elements]
    expected_pairwise = [field.mul(a, b) for a, b in zip(elements, others)]
    for backend in _backends(field):
        assert backend.mul_many(elements, scalar) == expected_scaled, backend.name
        assert backend.mul_many(elements, others) == expected_pairwise, backend.name
        assert backend.mul_many([], scalar) == []


@pytest.mark.parametrize("width", WIDTHS)
def test_pow_range_is_consecutive_powers(width):
    field = GF2m(width)
    rng = random.Random(width + 1)
    base = rng.randrange(1, field.order)
    expected = [field.pow(base, exponent) for exponent in range(1, 11)]
    for backend in _backends(field):
        assert backend.pow_range(base, 10) == expected, backend.name
        assert backend.pow_range(base, 0) == []


@pytest.mark.parametrize("width", WIDTHS)
def test_pow_range_many_matches_single(width):
    field = GF2m(width)
    rng = random.Random(width + 2)
    bases = [rng.randrange(1, field.order) for _ in range(25)]
    for backend in _backends(field):
        rows = backend.pow_range_many(bases, 8)
        assert rows == [backend.pow_range(base, 8) for base in bases], backend.name
        with pytest.raises(ValueError):
            backend.pow_range_many(bases, -1)


def test_xor_accumulate_and_scatter_agree_across_backends():
    rng = random.Random(7)
    rows = [[rng.randrange(0, 1 << 60) for _ in range(5)] for _ in range(30)]
    indices = [rng.randrange(0, 6) for _ in range(30)]
    row_idx = [rng.randrange(0, 6) for _ in range(50)]
    col_idx = [rng.randrange(0, 5) for _ in range(50)]
    values = [rng.randrange(0, 1 << 60) for _ in range(50)]
    results = []
    for backend in _backends(None):
        target = [0] * 5
        backend.xor_accumulate(target, rows)
        matrix = backend.scatter_xor_rows(6, 5, indices, rows)
        cells = backend.scatter_xor(6, 5, row_idx, col_idx, values)
        results.append((target, matrix, cells))
    assert all(result == results[0] for result in results[1:])
    # Plain-Python reference for the accumulate.
    expected = [0] * 5
    for row in rows:
        expected = [a ^ b for a, b in zip(expected, row)]
    assert results[0][0] == expected


def test_xor_accumulate_rejects_length_mismatch():
    for backend in _backends(None):
        with pytest.raises(ValueError):
            backend.xor_accumulate([0, 0], [[1, 2, 3]])


def test_xor_only_backend_has_no_field_ops():
    backend = PyBulkOps(None)
    with pytest.raises(ValueError):
        backend.mul_many([1], 2)
    with pytest.raises(ValueError):
        backend.pow_range(1, 3)


def test_auto_selection_falls_back_for_wide_fields():
    wide = GF2m(40)
    assert get_bulk_ops(wide).name == "python"
    assert available_backends(wide) == ["python"]


@needs_numpy
def test_auto_selection_prefers_numpy_when_usable():
    field = GF2m(16)
    assert get_bulk_ops(field).name == "numpy"
    assert "numpy" in available_backends(field)
    # XOR-only selection honours the value-width bound.
    assert get_bulk_ops(None, max_bits=64).name == "numpy"
    assert get_bulk_ops(None, max_bits=70).name == "python"


@needs_numpy
def test_forced_numpy_raises_when_unusable():
    with pytest.raises(BackendUnavailable):
        get_bulk_ops(GF2m(40), backend="numpy")


def test_env_var_forces_python_backend(monkeypatch):
    monkeypatch.setenv("REPRO_GF2_BACKEND", "python")
    assert get_bulk_ops(GF2m(16)).name == "python"
    monkeypatch.setenv("REPRO_GF2_BACKEND", "bogus")
    with pytest.raises(ValueError):
        get_bulk_ops(GF2m(16))


@needs_numpy
def test_rs_scheme_labels_bit_identical_across_backends():
    field = GF2m(14)
    rng = random.Random(3)
    vertices = list(range(12))
    edge_ids = {}
    used = set()
    for _ in range(25):
        u, v = rng.sample(vertices, 2)
        edge = (min(u, v), max(u, v))
        if edge in used:
            continue
        used.add(edge)
        edge_ids[edge] = rng.randrange(1, field.order)
    py_scheme = RSThresholdOutdetect(field, 3, vertices, edge_ids,
                                     bulk=PyBulkOps(field))
    np_scheme = RSThresholdOutdetect(field, 3, vertices, edge_ids,
                                     bulk=NumpyBulkOps(field, small_cutoff=0))
    for vertex in vertices:
        assert py_scheme.label_of(vertex) == np_scheme.label_of(vertex)
    sample = [py_scheme.label_of(vertex) for vertex in vertices[:6]]
    assert py_scheme.combine_all(sample) == np_scheme.combine_all(sample)


@needs_numpy
def test_sketch_labels_bit_identical_across_backends():
    rng = random.Random(5)
    vertices = list(range(10))
    edge_ids = {}
    for _ in range(20):
        u, v = rng.sample(vertices, 2)
        edge = (min(u, v), max(u, v))
        edge_ids.setdefault(edge, rng.randrange(1, 1 << 16))
    py_scheme = SketchOutdetect(vertices, edge_ids, repetitions=4, seed=9,
                                bulk=PyBulkOps(None))
    np_scheme = SketchOutdetect(vertices, edge_ids, repetitions=4, seed=9,
                                bulk=NumpyBulkOps(None, small_cutoff=0))
    for vertex in vertices:
        assert py_scheme.label_of(vertex) == np_scheme.label_of(vertex)
    sample = [py_scheme.label_of(vertex) for vertex in vertices]
    assert py_scheme.combine_all(sample) == np_scheme.combine_all(sample)


def test_scheme_construction_respects_env_backend(monkeypatch):
    """The auto path must fall back cleanly when numpy is unavailable; forcing
    the python backend through the environment is an equivalent check that the
    whole construction pipeline works without numpy kernels."""
    field = GF2m(13)
    vertices = [0, 1, 2, 3]
    edge_ids = {(0, 1): 5, (1, 2): 9, (2, 3): 17, (0, 3): 33}
    baseline = RSThresholdOutdetect(field, 2, vertices, edge_ids)
    monkeypatch.setenv("REPRO_GF2_BACKEND", "python")
    forced = RSThresholdOutdetect(field, 2, vertices, edge_ids)
    assert forced.bulk.name == "python"
    for vertex in vertices:
        assert baseline.label_of(vertex) == forced.label_of(vertex)
