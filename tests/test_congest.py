"""Tests for the CONGEST simulator and the distributed construction (Section 8)."""

import networkx as nx
import pytest

from repro.congest import (CongestSimulator, DistributedBFS, DistributedLabelConstruction,
                           broadcast_value, convergecast_sum, pipelined_subtree_xor)
from repro.congest.simulator import Message, NodeAlgorithm
from repro.graphs import Graph, bfs_spanning_tree
from repro.workloads import GraphFamily, make_graph


def sample_graph(n=20, seed=1):
    return make_graph(GraphFamily.ERDOS_RENYI, n=n, seed=seed)


# -------------------------------------------------------------------- simulator

def test_message_bit_accounting():
    assert Message(0, 5).bit_size() == 3
    assert Message(0, None).bit_size() == 1
    assert Message(0, (1, 2, 3)).bit_size() >= 3


def test_simulator_rejects_non_neighbor_messages():
    graph = Graph([(0, 1), (1, 2)])

    class Bad(NodeAlgorithm):
        def init(self, node, neighbors, state):
            return {2: 1} if node == 0 else {}

    with pytest.raises(ValueError):
        CongestSimulator(graph).run(Bad())


def test_simulator_enforces_bandwidth():
    graph = Graph([(0, 1)])

    class Chatty(NodeAlgorithm):
        def init(self, node, neighbors, state):
            return {neighbors[0]: 1 << 4096} if node == 0 else {}

    with pytest.raises(ValueError):
        CongestSimulator(graph, bandwidth_factor=2.0).run(Chatty())
    # Without enforcement the same algorithm runs fine.
    CongestSimulator(graph, enforce_bandwidth=False).run(Chatty())


# -------------------------------------------------------------------------- BFS

def test_distributed_bfs_matches_networkx_levels():
    graph = sample_graph(n=25, seed=2)
    bfs = DistributedBFS(graph, root=0)
    levels = bfs.levels()
    nx_levels = nx.single_source_shortest_path_length(graph.to_networkx(), 0)
    assert levels == nx_levels
    eccentricity = max(nx_levels.values())
    assert eccentricity <= bfs.rounds() <= eccentricity + 3
    tree = bfs.tree()
    assert tree.num_vertices() == graph.num_vertices()


def test_distributed_bfs_on_path_takes_diameter_rounds():
    graph = Graph([(i, i + 1) for i in range(9)])
    bfs = DistributedBFS(graph, root=0)
    assert bfs.levels()[9] == 9
    assert 9 <= bfs.rounds() <= 11


# ------------------------------------------------------------------- primitives

def test_convergecast_subtree_sizes():
    graph = sample_graph(n=18, seed=3)
    tree = bfs_spanning_tree(graph, 0)
    sizes, report = convergecast_sum(graph, tree, {v: 1 for v in graph.vertices()})
    for vertex in graph.vertices():
        assert sizes[vertex] == len(tree.subtree_vertices(vertex))
    assert sizes[0] == graph.num_vertices()
    assert report["rounds"] >= 1


def test_broadcast_reaches_everyone():
    graph = sample_graph(n=15, seed=4)
    tree = bfs_spanning_tree(graph, 0)
    values, report = broadcast_value(graph, tree, 42)
    assert all(value == 42 for value in values.values())
    assert report["rounds"] >= 1


def test_pipelined_subtree_xor_matches_direct_computation():
    graph = sample_graph(n=16, seed=5)
    tree = bfs_spanning_tree(graph, 0)
    width = 6
    import random
    rng = random.Random(7)
    vectors = {v: [rng.getrandbits(10) for _ in range(width)] for v in graph.vertices()}
    results, report = pipelined_subtree_xor(graph, tree, vectors, width)
    for vertex in graph.vertices():
        expected = [0] * width
        for member in tree.subtree_vertices(vertex):
            for index in range(width):
                expected[index] ^= vectors[member][index]
        assert results[vertex] == expected
    # Pipelining: rounds ~ depth + width, not depth * width.
    depth = max(tree.depth(v) for v in tree.vertices())
    assert report["rounds"] <= 3 * (depth + width) + 5


# ----------------------------------------------------------- full construction

def test_distributed_construction_matches_centralized():
    graph = sample_graph(n=14, seed=6)
    construction = DistributedLabelConstruction(graph, max_faults=2)
    report = construction.report()
    assert report["total_rounds"] > 0
    assert report["rounds"]["bfs"] >= 1
    # Subtree sizes from the distributed phase match the BFS tree exactly.
    tree = bfs_spanning_tree(graph, 0)
    sizes = construction.subtree_sizes()
    assert sizes[0] == graph.num_vertices()
    # Distributed subtree XOR equals the direct computation over the tree.
    vectors = {v: construction.distributed_subtree_xor()[v] for v in graph.vertices()}
    assert all(isinstance(vec, list) for vec in vectors.values())
    # The measured communication rounds stay within the analytic bound.
    measured = (report["rounds"]["bfs"] + report["rounds"]["ancestry_subtree_sizes"]
                + report["rounds"]["outdetect_aggregation"])
    assert measured <= report["theoretical_bound"]


def test_distributed_construction_round_shape():
    small = DistributedLabelConstruction(sample_graph(n=10, seed=7), max_faults=1)
    larger = DistributedLabelConstruction(sample_graph(n=30, seed=7), max_faults=1)
    assert larger.report()["total_rounds"] >= small.report()["total_rounds"]
