"""Property-based snapshot tests (requires ``hypothesis``; skipped without).

Two properties over *generated* graphs and fault sets, not hand-picked ones:

* **Round-trip**: ``FTCSnapshot.from_bytes(x).to_bytes() == x`` for both
  container versions — the encodings are canonical fixed points.
* **Answer bit-identity**: a v1-rehydrated oracle, a v2-rehydrated oracle,
  and the live labeling agree on every generated ``(s, t, F)`` query.

Examples are intentionally few (labeling construction dominates the runtime)
but each example covers a whole generated workload.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core import FTCConfig, FTCLabeling, FTCSnapshot, load_snapshot  # noqa: E402
from repro.workloads import GraphFamily, make_graph  # noqa: E402

MAX_FAULTS = 2

FAMILIES = [GraphFamily.ERDOS_RENYI, GraphFamily.GRID,
            GraphFamily.TREE_PLUS_CHORDS]

world_strategy = st.tuples(
    st.sampled_from(FAMILIES),
    st.integers(min_value=8, max_value=24),   # graph size
    st.integers(min_value=0, max_value=2**16),  # graph seed
    st.integers(min_value=0, max_value=2**16),  # query seed
)


def _build(family, n, seed):
    graph = make_graph(family, n=n, seed=seed, density=1.5)
    return graph, FTCLabeling(graph, FTCConfig(max_faults=MAX_FAULTS))


def _generated_queries(graph, seed, count=12):
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    queries = []
    for _ in range(count):
        faults = rng.sample(edges, rng.randint(0, min(MAX_FAULTS, len(edges))))
        s, t = rng.sample(vertices, 2)
        queries.append((s, t, faults))
    return queries


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(world=world_strategy)
def test_snapshot_round_trip_is_canonical(world):
    family, n, seed, _ = world
    _, labeling = _build(family, n, seed)
    v1 = labeling.to_snapshot_bytes()
    assert FTCSnapshot.from_bytes(v1, decode_labels=False).to_bytes() == v1
    v2 = FTCSnapshot.from_bytes(v1, decode_labels=False).to_bytes_v2()
    assert FTCSnapshot.from_bytes(v2, decode_labels=False).to_bytes_v2() == v2
    # Decoded contents are equal whichever container carried them.
    assert FTCSnapshot.from_bytes(v2) == FTCSnapshot.from_bytes(v1)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(world=world_strategy)
def test_v1_v2_and_live_answers_are_bit_identical(world):
    family, n, graph_seed, query_seed = world
    graph, labeling = _build(family, n, graph_seed)
    v1 = labeling.to_snapshot_bytes()
    v2 = FTCSnapshot.from_bytes(v1, decode_labels=False).to_bytes_v2()
    v1_oracle = load_snapshot(v1)
    v2_oracle = load_snapshot(v2)
    try:
        for s, t, faults in _generated_queries(graph, query_seed):
            expected = labeling.connected(s, t, faults)
            assert v1_oracle.connected(s, t, faults) == expected
            assert v2_oracle.connected(s, t, faults) == expected
            assert graph.connected(s, t, removed=faults) == expected
    finally:
        v1_oracle.close()
        v2_oracle.close()
