"""Cross-family integration tests: every scheme variant on every graph family.

These tests exercise the full pipeline (workload generation, labeling
construction, both query engines, auditing) the way the benchmark harness
does, but with correctness assertions instead of timing.
"""

import pytest

from repro.core import FTCConfig, FTCLabeling, FTConnectivityOracle, SchemeVariant
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload
from repro.workloads.queries import audit_scheme

FAMILIES = [GraphFamily.ERDOS_RENYI, GraphFamily.BARABASI_ALBERT, GraphFamily.GRID,
            GraphFamily.TREE_PLUS_CHORDS, GraphFamily.RANDOM_REGULAR]


@pytest.mark.parametrize("family", FAMILIES)
def test_deterministic_scheme_on_every_family(family):
    graph = make_graph(family, n=30, seed=41, density=1.8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    workload = make_query_workload(graph, num_queries=25, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=42)
    report = audit_scheme(lambda s, t, F: labeling.connected(s, t, F), workload)
    assert report["accuracy"] == 1.0, (family, report)


@pytest.mark.parametrize("variant", [SchemeVariant.RANDOMIZED_FULL,
                                     SchemeVariant.SKETCH_FULL])
def test_randomized_variants_on_grid(variant):
    graph = make_graph(GraphFamily.GRID, n=25, seed=43)
    oracle = FTConnectivityOracle(graph, max_faults=2, variant=variant)
    workload = make_query_workload(graph, num_queries=25, max_faults=2,
                                   model=FaultModel.ADVERSARIAL, seed=44)
    report = oracle.audit(workload.queries)
    # Full-query-support variants should be perfect; tolerate at most one whp miss.
    assert report["disagree"] + report["failures"] <= 1


@pytest.mark.parametrize("family", [GraphFamily.GRID, GraphFamily.TREE_PLUS_CHORDS])
def test_both_engines_agree_across_families(family):
    graph = make_graph(family, n=36, seed=45, density=1.5)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=3))
    workload = make_query_workload(graph, num_queries=20, max_faults=3,
                                   model=FaultModel.TREE_BIASED, seed=46)
    for (s, t, faults), expected in workload.pairs():
        assert labeling.connected(s, t, faults, use_fast_engine=True) == expected
        assert labeling.connected(s, t, faults, use_fast_engine=False) == expected


def test_adversarial_workload_on_sparse_graph_has_disconnections():
    """The integration workloads must actually exercise the 'disconnected' branch."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=40, seed=47, density=1.2)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    workload = make_query_workload(graph, num_queries=40, max_faults=2,
                                   model=FaultModel.ADVERSARIAL, seed=48)
    assert workload.disconnected_fraction() > 0
    report = audit_scheme(lambda s, t, F: labeling.connected(s, t, F), workload)
    assert report["accuracy"] == 1.0


def test_oracle_label_stats_consistent_across_variants():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=40, seed=49)
    sizes = {}
    for variant in (SchemeVariant.DETERMINISTIC_NEARLINEAR, SchemeVariant.SKETCH_WHP):
        oracle = FTConnectivityOracle(graph, max_faults=2, variant=variant)
        stats = oracle.label_size_stats()
        sizes[variant] = stats["max_edge_label_bits"]
        assert stats["n"] == 40
        assert stats["max_vertex_label_bits"] <= 4 * (2 * 80).bit_length()
    assert all(bits > 0 for bits in sizes.values())
