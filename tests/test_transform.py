"""Tests for the transformed instance (spanning tree, auxiliary graph, edge identifiers)."""

import networkx as nx
import pytest

from repro.core.transform import build_transformed_instance
from repro.graphs import Graph
from repro.labeling.ancestry import AncestryLabel


def sample_graph(n=20, m=45, seed=2):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


def test_transform_rejects_empty_graph():
    with pytest.raises(ValueError):
        build_transformed_instance(Graph())


def test_transform_default_root_is_smallest_vertex():
    graph = sample_graph()
    instance = build_transformed_instance(graph)
    assert instance.tree.root == min(graph.vertices())


def test_transform_edge_ids_are_injective_and_nonzero():
    graph = sample_graph(seed=3)
    instance = build_transformed_instance(graph)
    identifiers = list(instance.edge_ids.values())
    assert len(identifiers) == len(set(identifiers))
    assert all(identifier > 0 for identifier in identifiers)
    assert all(instance.codec.field.contains(identifier) for identifier in identifiers)


def test_transform_edge_ids_decode_to_endpoint_preorders():
    graph = sample_graph(seed=4)
    instance = build_transformed_instance(graph)
    for edge, identifier in instance.edge_ids.items():
        u, v = edge
        pre_u, pre_v = instance.codec.endpoint_preorders(identifier)
        assert pre_u == instance.ancestry.label(u).pre
        assert pre_v == instance.ancestry.label(v).pre


def test_transform_full_mode_round_trips_ancestry_labels():
    graph = sample_graph(seed=5)
    instance = build_transformed_instance(graph, edge_id_mode="full")
    for edge, identifier in instance.edge_ids.items():
        u, v = edge
        label_u, label_v = instance.codec.decode(identifier)
        assert isinstance(label_u, AncestryLabel)
        assert label_u == instance.ancestry.label(u)
        assert label_v == instance.ancestry.label(v)


def test_transform_sigma_covers_every_original_edge():
    graph = sample_graph(seed=6)
    instance = build_transformed_instance(graph)
    tree_prime_edges = set(instance.auxiliary.tree_prime.tree_edges())
    images = set()
    for u, v in graph.edges():
        image = instance.auxiliary.sigma(u, v)
        assert image in tree_prime_edges
        images.add(image)
    # sigma is injective on the original edge set.
    assert len(images) == graph.num_edges()


def test_transform_non_tree_edge_count():
    graph = sample_graph(seed=7)
    instance = build_transformed_instance(graph)
    expected = graph.num_edges() - (graph.num_vertices() - 1)
    assert len(instance.non_tree_edges) == expected
    assert len(instance.edge_ids) == expected


def test_transform_explicit_root():
    graph = sample_graph(seed=8)
    root = sorted(graph.vertices())[3]
    instance = build_transformed_instance(graph, root=root)
    assert instance.tree.root == root
    assert instance.auxiliary.tree_prime.root == root
