"""Whole-labeling snapshots: round-trip fidelity and fail-closed decoding.

The contract under test (ISSUE 2 / ROADMAP "persist whole labelings"):

* ``load_snapshot(labeling.to_snapshot_bytes())`` answers every ``(s, t, F)``
  query identically to the live scheme on the integration-family workloads,
  without a graph and without reconstruction;
* every corrupt byte string — truncated, oversized, wrong magic/version/kind,
  trailing garbage — raises ``LabelDecodeError`` without hangs or giant
  allocations.
"""

import random
import time

import pytest

from repro.core import (FTCConfig, FTCLabeling, FTCSnapshot, FTConnectivityOracle,
                        RehydratedOracle, SchemeVariant, load_snapshot)
from repro.core.serialize import LabelDecodeError
from repro.core.snapshot import (OutdetectDescriptor, SNAPSHOT_MAGIC,
                                 build_decode_outdetect, read_svarint,
                                 read_vertex_key, write_svarint, write_vertex_key)
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.sketch import SketchOutdetect
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload

FAMILIES = [GraphFamily.ERDOS_RENYI, GraphFamily.GRID, GraphFamily.TREE_PLUS_CHORDS]


def _answers(answerer, queries):
    """Answers (or failure markers) for a list of (s, t, F) queries."""
    results = []
    for s, t, faults in queries:
        try:
            results.append(answerer.connected(s, t, faults))
        except Exception as error:  # compared verbatim against the live scheme
            results.append(("raised", type(error).__name__))
    return results


# -------------------------------------------------------------- round trips


@pytest.mark.parametrize("family", FAMILIES)
def test_rehydrated_oracle_matches_live_on_integration_families(family):
    graph = make_graph(family, n=30, seed=41, density=1.8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    oracle = load_snapshot(labeling.to_snapshot_bytes())
    assert isinstance(oracle, RehydratedOracle)
    assert not hasattr(oracle, "graph")
    assert not hasattr(oracle, "hierarchy")
    workload = make_query_workload(graph, num_queries=30, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=42)
    assert _answers(oracle, workload.queries) == _answers(labeling, workload.queries)
    # Ground truth agreement rides along (deterministic variant is exact).
    assert _answers(oracle, workload.queries) == workload.ground_truth


@pytest.mark.parametrize("variant", [SchemeVariant.DETERMINISTIC_POLY,
                                     SchemeVariant.RANDOMIZED_FULL,
                                     SchemeVariant.SKETCH_WHP,
                                     SchemeVariant.SKETCH_FULL])
def test_rehydrated_oracle_matches_live_for_every_variant(variant):
    """Identical answers *and* identical failures under random fault sets."""
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=26, seed=7, density=2.0)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2, variant=variant,
                                            random_seed=3))
    oracle = load_snapshot(labeling.to_snapshot_bytes())
    workload = make_query_workload(graph, num_queries=25, max_faults=2,
                                   model=FaultModel.ADVERSARIAL, seed=8)
    assert _answers(oracle, workload.queries) == _answers(labeling, workload.queries)


def test_rehydrated_batched_api_matches_live():
    graph = make_graph(GraphFamily.GRID, n=36, seed=45)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=3))
    oracle = load_snapshot(labeling.to_snapshot_bytes())
    rng = random.Random(46)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for trial in range(5):
        faults = rng.sample(edges, 3)
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(30)]
        assert oracle.connected_many(pairs, faults) == \
            labeling.connected_many(pairs, faults)
        live = labeling.batch_session(faults)
        rehydrated = oracle.batch_session(faults)
        assert rehydrated.num_fragments() == live.num_fragments()
        assert rehydrated.num_components() == live.num_components()
    assert oracle.queries_answered == 5 * 30


def test_rehydrated_matches_full_oracle_api():
    """RehydratedOracle mirrors FTConnectivityOracle's query surface."""
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=24, seed=6, density=1.6)
    live = FTConnectivityOracle(graph, max_faults=2)
    rehydrated = load_snapshot(live.labeling.to_snapshot_bytes())
    for name in ("connected", "connected_many", "batch_session"):
        assert callable(getattr(rehydrated, name))
        assert callable(getattr(live, name))
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    faults = edges[:2]
    for s, t in [(vertices[0], vertices[-1]), (vertices[2], vertices[5])]:
        assert rehydrated.connected(s, t, faults) == live.connected(s, t, faults)
    assert rehydrated.num_vertices() == graph.num_vertices()
    assert rehydrated.num_edges() == graph.num_edges()
    assert rehydrated.max_faults == 2


def test_snapshot_dataclass_round_trip():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=20, seed=11)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    snapshot = FTCSnapshot.from_labeling(labeling)
    restored = FTCSnapshot.from_bytes(snapshot.to_bytes())
    assert restored == snapshot
    # A lazily parsed snapshot re-serializes to the identical bytes.
    lazy = FTCSnapshot.from_bytes(snapshot.to_bytes(), decode_labels=False)
    assert lazy.to_bytes() == snapshot.to_bytes()


def test_snapshot_bytes_are_canonical():
    """Equal labelings serialize identically regardless of insertion order."""
    from repro.graphs.graph import Graph

    edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "a")]
    forward = FTCLabeling(Graph(edges), FTCConfig(max_faults=2))
    backward = FTCLabeling(Graph(list(reversed(edges))), FTCConfig(max_faults=2))
    assert forward.to_snapshot_bytes() == backward.to_snapshot_bytes()
    assert forward.to_snapshot_bytes() == forward.to_snapshot_bytes()


def test_snapshot_file_round_trip(tmp_path):
    graph = make_graph(GraphFamily.GRID, n=16, seed=2)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    path = tmp_path / "labeling.ftcs"
    byte_count = labeling.save(path)
    assert path.stat().st_size == byte_count
    oracle = load_snapshot(path)
    vertices = sorted(graph.vertices())
    edges = sorted(graph.edges())
    assert oracle.connected(vertices[0], vertices[-1], edges[:2]) == \
        labeling.connected(vertices[0], vertices[-1], edges[:2])


def test_rehydrated_budget_and_membership_errors():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=18, seed=13)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    oracle = load_snapshot(labeling.to_snapshot_bytes())
    vertices = sorted(graph.vertices())
    edges = sorted(graph.edges())
    with pytest.raises(ValueError):
        oracle.connected(vertices[0], vertices[1], edges[:2])  # budget f=1
    with pytest.raises(KeyError):
        oracle.connected("nope", vertices[1])
    with pytest.raises(KeyError):
        oracle.edge_label("nope", "also-nope")
    # Restating the same fault twice stays within the deduplicated budget.
    assert oracle.connected(vertices[0], vertices[1], [edges[0], edges[0]]) == \
        labeling.connected(vertices[0], vertices[1], [edges[0], edges[0]])


# ------------------------------------------------------------ vertex keys


def test_vertex_key_round_trip():
    keys = [0, -7, 123456789, "a", "vertex-42", "", ("x", 3), (1, (2, "y")), ()]
    for key in keys:
        out = bytearray()
        write_vertex_key(key, out)
        decoded, offset = read_vertex_key(bytes(out), 0)
        assert decoded == key and offset == len(out)


def test_vertex_key_rejects_unsupported_types():
    for bad in (3.14, None, True, frozenset()):
        with pytest.raises(TypeError):
            write_vertex_key(bad, bytearray())
    with pytest.raises(LabelDecodeError):
        read_vertex_key(b"\x7f", 0)  # unknown tag


def test_svarint_round_trip():
    for value in (0, 1, -1, 63, -64, 1 << 80, -(1 << 80)):
        out = bytearray()
        write_svarint(value, out)
        decoded, offset = read_svarint(bytes(out), 0)
        assert decoded == value and offset == len(out)


# -------------------------------------------------------- decode-only schemes


def test_decode_only_rs_matches_full_scheme():
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=20, seed=5)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    full_levels = labeling.outdetect.level_schemes
    for level in full_levels:
        rebuilt = RSThresholdOutdetect.decode_only(level.field, level.threshold,
                                                   adaptive=level.adaptive)
        assert rebuilt.zero_label() == level.zero_label()
        syndrome = level.syndrome_of_edge_set(list(level.edge_ids)[:1]) \
            if level.edge_ids else level.zero_label()
        assert rebuilt.decode(syndrome) == level.decode(syndrome)
        with pytest.raises(KeyError):
            rebuilt.label_of(0)


def test_decode_only_sketch_matches_full_scheme():
    edge_ids = {(0, 1): 5, (1, 2): 9, (0, 2): 12}
    full = SketchOutdetect([0, 1, 2], edge_ids, repetitions=4, seed=3)
    rebuilt = SketchOutdetect.decode_only(full.num_levels, full.repetitions,
                                          full.seed, full.id_bits)
    assert rebuilt.zero_label() == full.zero_label()
    label = full.label_of_set([0])
    assert rebuilt.decode(label) == full.decode(label)
    assert rebuilt.label_bit_size(label) == full.label_bit_size(label)


def test_decode_only_constructors_reject_invalid_parameters():
    from repro.gf2.field import GF2m

    with pytest.raises(ValueError):
        RSThresholdOutdetect.decode_only(GF2m(8), 0)
    with pytest.raises(ValueError):
        SketchOutdetect.decode_only(0, 4, 0, 8)
    with pytest.raises(ValueError):
        SketchOutdetect.decode_only(4, 0, 0, 8)
    with pytest.raises(ValueError):
        SketchOutdetect.decode_only(4, 4, 0, 0)


def test_build_decode_outdetect_rejects_bad_descriptors():
    from repro.gf2.field import GF2m
    field = GF2m(8)
    with pytest.raises(LabelDecodeError):
        build_decode_outdetect(OutdetectDescriptor(kind="layered-rs"), field, True)
    with pytest.raises(LabelDecodeError):
        build_decode_outdetect(OutdetectDescriptor(kind="martian"), field, True)


# ------------------------------------------------------------- fail closed


@pytest.fixture(scope="module")
def snapshot_bytes():
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=18, seed=9, density=1.5)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    return labeling.to_snapshot_bytes()


def test_snapshot_header_validation(snapshot_bytes):
    data = snapshot_bytes
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(b"XXXX" + data[4:])            # bad magic
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes([*data[:4], 99]) + data[5:])  # bad version
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(data + b"\x00")                 # trailing bytes
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(b"FT")                          # too short
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(b"")


def test_snapshot_truncation_fails_closed(snapshot_bytes):
    """Every proper prefix raises LabelDecodeError (eager and lazy paths)."""
    data = snapshot_bytes
    cuts = sorted({len(data) * i // 97 for i in range(97)} | {len(data) - 1})
    for cut in cuts:
        if cut >= len(data):
            continue
        with pytest.raises(LabelDecodeError):
            FTCSnapshot.from_bytes(data[:cut])
        with pytest.raises(LabelDecodeError):
            FTCSnapshot.from_bytes(data[:cut], decode_labels=False)


def test_snapshot_fuzzed_mutations_fail_closed(snapshot_bytes):
    """Random corruption parses fully or raises LabelDecodeError — nothing else.

    (The oracle is intentionally not queried here: a mutation inside a label
    payload can produce a *valid but different* label, which is corruption the
    format cannot detect without checksums; the fail-closed guarantee covers
    the decoding layer.)
    """
    rng = random.Random(99)
    data = snapshot_bytes
    for _ in range(200):
        mutated = bytearray(data)
        for _ in range(rng.randint(1, 8)):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        try:
            FTCSnapshot.from_bytes(bytes(mutated))
        except LabelDecodeError:
            pass


def test_snapshot_oversized_counts_fail_fast():
    """Huge declared counts and lengths must fail before any big allocation."""
    from repro.core.serialize import write_varint

    graph = make_graph(GraphFamily.GRID, n=9, seed=1)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=1))
    snapshot = FTCSnapshot.from_labeling(labeling)
    # An otherwise-valid snapshot whose label sections are empty ends with the
    # two zero count varints, which makes the counts easy to splice.
    empty = FTCSnapshot(config=snapshot.config, codec_modulus=snapshot.codec_modulus,
                        field_width=snapshot.field_width,
                        field_modulus=snapshot.field_modulus,
                        outdetect=snapshot.outdetect,
                        vertex_labels={}, edge_labels={})
    data = empty.to_bytes()
    assert data.endswith(b"\x00\x00")
    assert FTCSnapshot.from_bytes(data).vertex_labels == {}

    oversized_vertices = bytearray(data[:-2])
    write_varint(1 << 50, oversized_vertices)          # absurd vertex count
    write_varint(0, oversized_vertices)
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes(oversized_vertices))

    oversized_edges = bytearray(data[:-1])
    write_varint(1 << 50, oversized_edges)             # absurd edge count
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes(oversized_edges))

    bad_key = bytearray([0x02])                        # tuple key ...
    write_varint(1 << 50, bad_key)                     # ... of absurd arity
    with pytest.raises(LabelDecodeError):
        read_vertex_key(bytes(bad_key) + b"\x00\x01", 0)


def test_rehydration_rejects_implausible_parameters(snapshot_bytes):
    """Corrupt decode-side parameters must fail closed at rehydration time —
    quickly, with LabelDecodeError, and without giant constructions."""
    import dataclasses

    base = FTCSnapshot.from_bytes(snapshot_bytes)

    def rehydrate_with(**overrides):
        return dataclasses.replace(base, **overrides).rehydrate()

    with pytest.raises(LabelDecodeError):
        rehydrate_with(field_width=0)
    with pytest.raises(LabelDecodeError):
        rehydrate_with(field_width=1 << 40)              # no giant field search
    with pytest.raises(LabelDecodeError):
        rehydrate_with(codec_modulus=0)
    with pytest.raises(LabelDecodeError):
        rehydrate_with(codec_modulus=1 << 300)           # domain exceeds the field
    with pytest.raises(LabelDecodeError):
        rehydrate_with(field_modulus=3)                  # degree != width
    with pytest.raises(LabelDecodeError):
        # Right degree, but reducible (x^w divides by x): arithmetic over a
        # non-field ring would decode silently wrong edge sets.
        rehydrate_with(field_modulus=1 << base.field_width)
    start = time.perf_counter()
    with pytest.raises(LabelDecodeError):
        # Huge hostile modulus with a plausible width: the degree check must
        # reject it before any expensive irreducibility computation.
        rehydrate_with(field_modulus=(1 << 100_000) | 1)
    assert time.perf_counter() - start < 1.0
    with pytest.raises(LabelDecodeError):
        rehydrate_with(outdetect=OutdetectDescriptor(
            kind="layered-rs", thresholds=(1 << 40,)))   # no giant zero labels
    with pytest.raises(LabelDecodeError):
        rehydrate_with(outdetect=OutdetectDescriptor(
            kind="sketch", num_levels=1 << 40, repetitions=1 << 20, id_bits=8))


def test_lazy_corrupt_label_blob_fails_on_first_use(snapshot_bytes):
    """Structure-valid but payload-corrupt labels fail closed at query time."""
    oracle = load_snapshot(snapshot_bytes)
    vertex = sorted(oracle.vertices())[0]
    raw = oracle._vertex_labels[vertex]
    assert isinstance(raw, bytes)  # still lazy
    oracle._vertex_labels[vertex] = raw[:-1] + b"\x80"  # truncate a varint
    with pytest.raises(LabelDecodeError):
        oracle.vertex_label(vertex)


def test_audit_scheme_propagates_programming_errors():
    """audit_scheme tolerates only QueryFailure, mirroring oracle.audit."""
    from repro.core.query import QueryFailure
    from repro.workloads.queries import QueryWorkload, audit_scheme

    workload = QueryWorkload(queries=[("a", "b", [])], ground_truth=[True])

    def boom(s, t, faults):
        raise KeyError("genuine bug")

    with pytest.raises(KeyError):
        audit_scheme(boom, workload)

    def benign(s, t, faults):
        raise QueryFailure("whp miss")

    assert audit_scheme(benign, workload)["failed"] == 1


# ------------------------------------------------- version 2 (mmap layout)


def test_v2_round_trip_and_answer_identity(snapshot_bytes):
    """v2 re-encodes the same labeling: equal decoded snapshots, equal
    answers, and a canonical encoding of its own."""
    from repro.core.snapshot import SNAPSHOT_PAGE_SIZE, SNAPSHOT_VERSION_V2

    v1_snapshot = FTCSnapshot.from_bytes(snapshot_bytes)
    v2_bytes = v1_snapshot.to_bytes_v2()
    assert v2_bytes[4] == SNAPSHOT_VERSION_V2
    v2_snapshot = FTCSnapshot.from_bytes(v2_bytes)
    assert v2_snapshot == v1_snapshot  # format_version excluded from equality
    assert v2_snapshot.format_version == SNAPSHOT_VERSION_V2
    # The label region is page-aligned, and re-encoding is canonical.
    region_offset = int.from_bytes(v2_bytes[5:13], "little")
    assert region_offset % SNAPSHOT_PAGE_SIZE == 0
    lazy = FTCSnapshot.from_bytes(v2_bytes, decode_labels=False)
    assert lazy.to_bytes_v2() == v2_bytes
    # And v2 state re-encodes to the identical v1 bytes too.
    assert v2_snapshot.to_bytes() == snapshot_bytes


def test_v2_oracle_answers_match_v1(tmp_path, snapshot_bytes):
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=18, seed=9, density=1.5)
    v1_path = tmp_path / "l1.ftcs"
    v1_path.write_bytes(snapshot_bytes)
    v2_path = tmp_path / "l2.ftcs"
    from repro.core.snapshot import upgrade_snapshot_file

    report = upgrade_snapshot_file(v1_path, v2_path)
    assert report["from_version"] == 1
    assert report["to_version"] == 2
    assert v2_path.stat().st_size == report["bytes"]
    v1_oracle = load_snapshot(v1_path)
    v2_oracle = load_snapshot(v2_path)
    workload = make_query_workload(graph, num_queries=40, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=17)
    assert _answers(v2_oracle, workload.queries) == \
        _answers(v1_oracle, workload.queries)
    v1_oracle.close()
    v2_oracle.close()


def test_v2_file_loads_through_mmap(tmp_path, snapshot_bytes):
    """Loading a v2 file keeps label blobs as views over the mapping, not
    copies, and still decodes lazily per label."""
    v2_path = tmp_path / "l2.ftcs"
    v2_path.write_bytes(FTCSnapshot.from_bytes(
        snapshot_bytes, decode_labels=False).to_bytes_v2())
    oracle = load_snapshot(v2_path)
    assert oracle._mmap is not None
    vertex = sorted(oracle.vertices())[0]
    assert isinstance(oracle._vertex_labels[vertex], memoryview)
    label = oracle.vertex_label(vertex)  # decodes on first use
    assert oracle._vertex_labels[vertex] is label
    oracle.close()


def test_v2_close_releases_buffers_and_fails_post_close_queries(
        tmp_path, snapshot_bytes):
    from repro.errors import OracleClosedError

    v2_path = tmp_path / "l2.ftcs"
    v2_path.write_bytes(FTCSnapshot.from_bytes(
        snapshot_bytes, decode_labels=False).to_bytes_v2())
    oracle = load_snapshot(v2_path)
    vertices = sorted(oracle.vertices())
    assert oracle.connected(vertices[0], vertices[1]) in (True, False)
    oracle.close()
    oracle.close()  # idempotent
    with pytest.raises(OracleClosedError):
        oracle.connected(vertices[0], vertices[1])
    with pytest.raises(OracleClosedError):
        oracle.connected_many([(vertices[0], vertices[1])], [])
    with pytest.raises(OracleClosedError):
        oracle.batch_session([])
    with pytest.raises(OracleClosedError):
        oracle.vertex_label(vertices[0])


def test_v2_validation_fails_closed(snapshot_bytes):
    """Corrupt v2 region headers raise LabelDecodeError, never misparse."""
    data = bytearray(FTCSnapshot.from_bytes(
        snapshot_bytes, decode_labels=False).to_bytes_v2())
    region_offset = int.from_bytes(data[5:13], "little")

    def with_header(offset=None, length=None):
        mutated = bytearray(data)
        if offset is not None:
            mutated[5:13] = offset.to_bytes(8, "little")
        if length is not None:
            mutated[13:21] = length.to_bytes(8, "little")
        return bytes(mutated)

    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(with_header(offset=region_offset + 1))  # unaligned
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(with_header(offset=len(data) * 2))  # beyond end
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(with_header(length=len(data)))  # wrong length
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes(data) + b"\x00")  # trailing bytes
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes(data[:region_offset - 1]))  # truncated
    # Nonzero padding between the index and the region is rejected.
    padded = bytearray(data)
    padded[region_offset - 1] = 1
    with pytest.raises(LabelDecodeError):
        FTCSnapshot.from_bytes(bytes(padded))


def test_v2_truncation_fails_closed(snapshot_bytes):
    data = FTCSnapshot.from_bytes(snapshot_bytes,
                                  decode_labels=False).to_bytes_v2()
    cuts = sorted({len(data) * i // 53 for i in range(53)} | {len(data) - 1})
    for cut in cuts:
        if cut >= len(data):
            continue
        with pytest.raises(LabelDecodeError):
            FTCSnapshot.from_bytes(data[:cut], decode_labels=False)


def test_save_dispatches_on_version(tmp_path, snapshot_bytes):
    from repro.core.snapshot import SNAPSHOT_VERSION_V2

    snapshot = FTCSnapshot.from_bytes(snapshot_bytes)
    v1_path = tmp_path / "v1.ftcs"
    v2_path = tmp_path / "v2.ftcs"
    snapshot.save(v1_path)
    snapshot.save(v2_path, version=SNAPSHOT_VERSION_V2)
    assert v1_path.read_bytes()[4] == 1
    assert v2_path.read_bytes()[4] == SNAPSHOT_VERSION_V2
    with pytest.raises(ValueError):
        snapshot.save(tmp_path / "v9.ftcs", version=9)
