"""Tests for the graph, spanning-tree, Euler-tour, auxiliary-graph, and fragment substrates."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (AuxiliaryGraph, EulerTour, Graph, RootedTree,
                          bfs_spanning_tree, canonical_edge, dfs_spanning_tree,
                          tree_fragments)
from repro.graphs.fragments import fragment_boundaries, fragment_index_of
from repro.graphs.spanning_tree import non_tree_edges


def small_graph():
    graph = Graph()
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (2, 4), (4, 5), (5, 2)]:
        graph.add_edge(u, v)
    return graph


# -------------------------------------------------------------------- Graph

def test_canonical_edge_order_independent():
    assert canonical_edge(3, 1) == canonical_edge(1, 3)


def test_canonical_edge_rejects_self_loop():
    with pytest.raises(ValueError):
        canonical_edge(2, 2)


def test_graph_basic_counts():
    graph = small_graph()
    assert graph.num_vertices() == 6
    assert graph.num_edges() == 8
    assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
    assert not graph.has_edge(0, 5)
    assert graph.degree(2) == 4


def test_graph_remove_edge():
    graph = small_graph()
    graph.remove_edge(0, 1)
    assert not graph.has_edge(0, 1)
    with pytest.raises(KeyError):
        graph.remove_edge(0, 1)


def test_without_edges_preserves_vertices():
    graph = small_graph()
    reduced = graph.without_edges([(2, 4), (4, 5)])
    assert reduced.num_vertices() == 6
    assert reduced.num_edges() == 6
    assert not reduced.has_edge(2, 4)


def test_connected_components_and_connectivity():
    graph = small_graph()
    assert graph.is_connected()
    assert graph.connected(0, 5)
    assert not graph.connected(0, 5, removed=[(2, 4), (5, 2)])
    cut = graph.without_edges([(2, 4), (5, 2)])
    components = cut.connected_components()
    assert len(components) == 2


def test_networkx_roundtrip():
    nx_graph = nx.erdos_renyi_graph(20, 0.3, seed=7)
    graph = Graph.from_networkx(nx_graph)
    assert graph.num_vertices() == nx_graph.number_of_nodes()
    assert graph.num_edges() == nx_graph.number_of_edges()
    back = graph.to_networkx()
    assert set(map(frozenset, back.edges())) == set(map(frozenset, nx_graph.edges()))


# --------------------------------------------------------------- RootedTree

def test_bfs_spanning_tree_structure():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    assert tree.root == 0
    assert tree.parent(0) is None
    assert tree.num_vertices() == 6
    assert len(tree.tree_edges()) == 5
    # Every tree edge is an edge of the graph.
    for u, v in tree.tree_edges():
        assert graph.has_edge(u, v)


def test_dfs_spanning_tree_covers_graph():
    graph = small_graph()
    tree = dfs_spanning_tree(graph, 2)
    assert sorted(tree.vertices()) == sorted(graph.vertices())
    assert len(tree.tree_edges()) == graph.num_vertices() - 1


def test_spanning_tree_disconnected_raises():
    graph = Graph([(0, 1)], vertices=[0, 1, 2])
    with pytest.raises(ValueError):
        bfs_spanning_tree(graph, 0)


def test_tree_ancestry_and_subtree():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    for vertex in tree.vertices():
        assert tree.is_ancestor(0, vertex)
        subtree = tree.subtree_vertices(vertex)
        assert vertex in subtree
        for descendant in subtree:
            assert tree.is_ancestor(vertex, descendant)


def test_lower_endpoint():
    tree = bfs_spanning_tree(small_graph(), 0)
    for u, v in tree.tree_edges():
        lower = tree.lower_endpoint(u, v)
        upper = v if lower == u else u
        assert tree.parent(lower) == upper


def test_non_tree_edges_partition():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    extra = non_tree_edges(graph, tree)
    assert len(extra) == graph.num_edges() - (graph.num_vertices() - 1)
    assert set(extra).isdisjoint(set(tree.tree_edges()))


# ---------------------------------------------------------------- EulerTour

def test_euler_tour_arc_count_and_coordinates():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    tour = EulerTour(tree)
    n = tree.num_vertices()
    assert tour.num_arcs() == 2 * (n - 1)
    assert tour.coordinate(tree.root) == 0
    coordinates = [tour.coordinate(v) for v in tree.vertices() if v != tree.root]
    assert len(set(coordinates)) == n - 1
    assert all(1 <= c <= 2 * n - 2 for c in coordinates)


def test_euler_tour_downward_arc_precedes_upward():
    tree = bfs_spanning_tree(small_graph(), 0)
    tour = EulerTour(tree)
    for u, v in tree.tree_edges():
        lower = tree.lower_endpoint(u, v)
        upper = v if lower == u else u
        down = tour.arc_position(upper, lower)
        up = tour.arc_position(lower, upper)
        assert down < up


def test_lemma3_cut_characterization():
    """Lemma 3: the cut set equals the symmetric-difference region membership."""
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    tour = EulerTour(tree)
    non_tree = non_tree_edges(graph, tree)
    points = tour.embed_edges(non_tree)
    import itertools
    vertices = sorted(graph.vertices())
    for size in (1, 2, 3):
        for subset in itertools.combinations(vertices, size):
            vertex_set = set(subset) | {tree.root} if tree.root not in subset else set(subset)
            cut_positions = tour.directed_cut_positions(vertex_set)
            for edge in non_tree:
                u, v = edge
                in_cut = (u in vertex_set) != (v in vertex_set)
                in_region = tour.point_in_symmetric_difference(points[edge], cut_positions)
                assert in_cut == in_region, (vertex_set, edge)


# ------------------------------------------------------------ AuxiliaryGraph

def test_auxiliary_graph_sizes():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    aux = AuxiliaryGraph(graph, tree)
    stats = aux.statistics()
    extra = graph.num_edges() - (graph.num_vertices() - 1)
    assert stats["n_prime"] == graph.num_vertices() + extra
    assert stats["m_prime"] == graph.num_edges() + extra
    assert stats["non_tree_edges_prime"] == extra
    assert aux.tree_prime.num_vertices() == stats["n_prime"]


def test_auxiliary_sigma_maps_to_tree_edges():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    aux = AuxiliaryGraph(graph, tree)
    tree_edge_set = set(aux.tree_prime.tree_edges())
    for u, v in graph.edges():
        assert aux.sigma(u, v) in tree_edge_set


def test_auxiliary_connectivity_equivalence():
    """Proposition 1: connectivity in G - F matches G' - sigma(F)."""
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    aux = AuxiliaryGraph(graph, tree)
    import itertools
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for faults in itertools.combinations(edges, 2):
        mapped = aux.map_faults(faults)
        for s, t in itertools.combinations(vertices, 2):
            original = graph.connected(s, t, removed=faults)
            transformed = aux.graph_prime.connected(s, t, removed=mapped)
            assert original == transformed, (faults, s, t)


# ---------------------------------------------------------------- fragments

def test_tree_fragments_partition():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    faults = tree.tree_edges()[:2]
    fragments = tree_fragments(tree, faults)
    assert len(fragments) == len(faults) + 1
    union = set().union(*fragments)
    assert union == set(tree.vertices())
    assert sum(len(f) for f in fragments) == tree.num_vertices()


def test_tree_fragments_rejects_non_tree_edge():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    bad = non_tree_edges(graph, tree)[0]
    with pytest.raises(ValueError):
        tree_fragments(tree, [bad])


def test_fragment_boundaries_match_definition():
    graph = small_graph()
    tree = bfs_spanning_tree(graph, 0)
    faults = tree.tree_edges()[:3]
    fragments = tree_fragments(tree, faults)
    boundaries = fragment_boundaries(tree, faults)
    index_of = fragment_index_of(tree, faults)
    for fragment, boundary in zip(fragments, boundaries):
        expected = set()
        for u, v in faults:
            if (u in fragment) != (v in fragment):
                expected.add(canonical_edge(u, v))
        assert boundary == expected
    assert set(index_of) == set(tree.vertices())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), extra=st.integers(min_value=0, max_value=15))
def test_fragments_match_components_random(seed, extra):
    nx_graph = nx.gnm_random_graph(12, 11 + extra, seed=seed)
    if not nx.is_connected(nx_graph):
        return
    graph = Graph.from_networkx(nx_graph)
    tree = bfs_spanning_tree(graph, 0)
    import random
    rng = random.Random(seed)
    tree_edges = tree.tree_edges()
    faults = rng.sample(tree_edges, min(3, len(tree_edges)))
    fragments = tree_fragments(tree, faults)
    forest = Graph(vertices=tree.vertices(),
                   edges=[e for e in tree_edges if e not in set(faults)])
    components = {frozenset(c) for c in forest.connected_components()}
    assert {frozenset(f) for f in fragments} == components
