#!/usr/bin/env python3
"""Scenario: distributed construction of the labels in the CONGEST model (Theorem 3).

The labels are not handed down by an omniscient controller: Section 8 of the
paper constructs them with a synchronous message-passing algorithm whose round
complexity is Õ(√m·D + f²).  This example runs the distributed construction on
the simulator, prints the per-phase round counts, and compares the total
against the analytic bound.

Run with:  python examples/congest_construction.py
"""

from repro.congest import DistributedLabelConstruction
from repro.workloads import GraphFamily, make_graph


def main() -> None:
    for n in (30, 60, 90):
        graph = make_graph(GraphFamily.ERDOS_RENYI, n=n, seed=5, density=2.0)
        construction = DistributedLabelConstruction(graph, max_faults=2)
        report = construction.report()
        print("n=%3d m=%3d | rounds: bfs=%d ancestry=%d aggregation=%d "
              "hierarchy-budget=%d | total=%d (bound %.0f)"
              % (graph.num_vertices(), graph.num_edges(),
                 report["rounds"]["bfs"],
                 report["rounds"]["ancestry_subtree_sizes"],
                 report["rounds"]["outdetect_aggregation"],
                 report["rounds"]["hierarchy_budget"],
                 report["total_rounds"], report["theoretical_bound"]))


if __name__ == "__main__":
    main()
