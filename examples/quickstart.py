#!/usr/bin/env python3
"""Quickstart: build f-FTC labels for a small network and answer queries.

Run with:  python examples/quickstart.py
"""

from repro import FTCConfig, FTCLabeling, Graph, SchemeVariant


def main() -> None:
    # A small "data-center pod": two rings joined by a few cross links.
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 0),          # ring A
        (4, 5), (5, 6), (6, 7), (7, 4),          # ring B
        (0, 4), (2, 6),                          # cross links
    ]
    graph = Graph(edges)
    print("graph: %d vertices, %d edges" % (graph.num_vertices(), graph.num_edges()))

    # Build the deterministic labeling for up to f = 2 simultaneous link faults.
    config = FTCConfig(max_faults=2, variant=SchemeVariant.DETERMINISTIC_NEARLINEAR)
    labeling = FTCLabeling(graph, config)

    stats = labeling.label_size_stats()
    print("max vertex label: %d bits, max edge label: %d bits"
          % (stats["max_vertex_label_bits"], stats["max_edge_label_bits"]))

    # The decoder only ever sees labels: this is what would be shipped to a
    # node that needs to answer connectivity queries under faults.
    decoder = labeling.decoder()
    queries = [
        (1, 6, []),
        (1, 6, [(2, 6)]),
        (1, 6, [(2, 6), (0, 4)]),                # both cross links down
        (0, 3, [(3, 0), (2, 3)]),                # vertex 3 cut off from the ring
    ]
    for s, t, faults in queries:
        fault_labels = [labeling.edge_label(u, v) for u, v in faults]
        answer = decoder.connected(labeling.vertex_label(s), labeling.vertex_label(t),
                                   fault_labels)
        truth = graph.connected(s, t, removed=faults)
        print("connected(%s, %s | faults=%s) = %-5s (ground truth %s)"
              % (s, t, faults, answer, truth))
        assert answer == truth


if __name__ == "__main__":
    main()
