#!/usr/bin/env python3
"""Scenario: fault-tolerant approximate distance estimation (Corollary 1).

A planner needs rough travel times in a road-like grid network while some
road segments are closed.  The fault-tolerant distance labeling answers
"how far is t from s with these closures?" from labels only, and the example
compares the estimates against exact shortest paths.

Run with:  python examples/distance_estimation.py
"""

import networkx as nx

from repro.applications import FaultTolerantDistanceLabeling
from repro.applications.distance_labeling import UNREACHABLE
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload


def main() -> None:
    graph = make_graph(GraphFamily.GRID, n=49, seed=1)
    print("road network: %d junctions, %d segments"
          % (graph.num_vertices(), graph.num_edges()))

    scheme = FaultTolerantDistanceLabeling(graph, max_faults=2, stretch_parameter=2)
    stats = scheme.label_size_stats()
    print("distance labels: %d scales, max %d bits per junction"
          % (stats["scales"], stats["max_vertex_label_bits"]))

    workload = make_query_workload(graph, num_queries=40, max_faults=2,
                                   model=FaultModel.UNIFORM, seed=2)
    nx_graph = graph.to_networkx()
    shown = 0
    for (s, t, faults), expected in workload.pairs():
        estimate = scheme.estimate_distance(s, t, faults)
        if expected:
            reduced = graph.without_edges(faults).to_networkx()
            true_distance = nx.shortest_path_length(reduced, s, t)
            if shown < 5:
                print("dist(%s, %s | %d closures): estimate %.0f, true %d"
                      % (s, t, len(faults), estimate, true_distance))
                shown += 1
        else:
            assert estimate == UNREACHABLE

    report = scheme.stretch_report(workload.queries)
    print("over %d queries: mean stretch %.2f, max stretch %.2f"
          % (report["finite_queries"], report["mean_stretch"], report["max_stretch"]))
    _ = nx_graph


if __name__ == "__main__":
    main()
