#!/usr/bin/env python3
"""Scenario: forbidden-set routing around failed links (Corollary 2).

Packets carry the labels of the currently failed links in their header;
switches combine those with their local routing tables to forward around the
failures.  The example routes a batch of packets under random link failures,
verifies every delivered path avoids the failed links, and reports the
observed path stretch against the true shortest paths.

Run with:  python examples/forbidden_set_routing.py
"""

from repro.applications import ForbiddenSetRoutingScheme
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload


def main() -> None:
    graph = make_graph(GraphFamily.ERDOS_RENYI, n=80, seed=21, density=2.2)
    print("network: %d routers, %d links" % (graph.num_vertices(), graph.num_edges()))

    scheme = ForbiddenSetRoutingScheme(graph, max_faults=2)
    tables = scheme.table_size_stats()
    print("routing tables: max %d bits, mean %.0f bits per router"
          % (tables["max_table_bits"], tables["mean_table_bits"]))

    workload = make_query_workload(graph, num_queries=60, max_faults=2,
                                   model=FaultModel.TREE_BIASED, seed=22)
    report = scheme.stretch_report(workload.queries)
    print("packets: %d total, %d delivered, %d to genuinely disconnected targets"
          % (report["total"], report["delivered"], report["disconnected_queries"]))
    print("observed stretch: mean %.2f, max %.2f"
          % (report["mean_stretch"], report["max_stretch"]))

    # Show one concrete detour.
    for (s, t, faults), expected in workload.pairs():
        if expected and faults:
            result = scheme.route(s, t, faults)
            if result.delivered and result.fragments_crossed > 0:
                print("example: %s -> %s avoiding %s took %d hops via %s"
                      % (s, t, faults, result.hops, result.path))
                break


if __name__ == "__main__":
    main()
