#!/usr/bin/env python3
"""Scenario: distributed network monitoring under link failures.

A monitoring agent sits next to every switch of a mid-size network.  Agents
cannot see the global topology; each one only stores the labels of its own
switch.  When a set of links is reported down, any agent can decide — from
labels alone — which destination switches are still reachable, compare the
deterministic scheme against the randomized Dory--Parter sketch baseline, and
count how often each is right.

Run with:  python examples/network_monitoring.py
"""

import random
import time

from repro import FTCConfig, FTCLabeling, SchemeVariant
from repro.baselines import DoryParterScheme
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload


def main() -> None:
    graph = make_graph(GraphFamily.TREE_PLUS_CHORDS, n=120, seed=7, density=1.4)
    print("network: %d switches, %d links" % (graph.num_vertices(), graph.num_edges()))

    max_faults = 3
    start = time.perf_counter()
    deterministic = FTCLabeling(graph, FTCConfig(max_faults=max_faults,
                                                 variant=SchemeVariant.DETERMINISTIC_NEARLINEAR))
    print("deterministic labeling built in %.2f s" % (time.perf_counter() - start))

    start = time.perf_counter()
    sketch = DoryParterScheme(graph, max_faults=max_faults, full_query_support=False, seed=3)
    print("sketch (whp) labeling built in %.2f s" % (time.perf_counter() - start))

    det_stats = deterministic.label_size_stats()
    sk_stats = sketch.label_size_stats()
    print("label sizes (bits/edge): deterministic=%d, sketch-whp=%d"
          % (det_stats["max_edge_label_bits"], sk_stats["max_edge_label_bits"]))

    # Simulate fault reports: tree-biased faults actually split the network.
    workload = make_query_workload(graph, num_queries=120, max_faults=max_faults,
                                   model=FaultModel.ADVERSARIAL, seed=11)
    print("%.0f%% of the monitoring queries are real disconnections"
          % (100 * workload.disconnected_fraction()))

    rng = random.Random(0)
    det_wrong = sk_wrong = sk_failed = 0
    start = time.perf_counter()
    for (s, t, faults), expected in workload.pairs():
        if deterministic.connected(s, t, faults) != expected:
            det_wrong += 1
    det_time = time.perf_counter() - start

    start = time.perf_counter()
    for (s, t, faults), expected in workload.pairs():
        try:
            if sketch.connected(s, t, faults) != expected:
                sk_wrong += 1
        except Exception:
            sk_failed += 1
    sk_time = time.perf_counter() - start

    print("deterministic: %d/%d wrong, %.1f ms/query"
          % (det_wrong, len(workload), 1000 * det_time / len(workload)))
    print("sketch (whp):  %d/%d wrong, %d failed, %.1f ms/query"
          % (sk_wrong, len(workload), sk_failed, 1000 * sk_time / len(workload)))
    print("the deterministic scheme must never be wrong; the whp sketch may miss rarely")
    assert det_wrong == 0
    _ = rng  # reserved for extending the scenario


if __name__ == "__main__":
    main()
